//! Algorithm 1 of the paper: exact APSP in `O(n)` rounds (Theorem 1).
//!
//! The algorithm first builds the BFS tree `T_1` rooted at the node with the
//! smallest id, then sends a *pebble* on a depth-first traversal of `T_1`.
//! Each time the pebble enters a node `v` for the first time it **waits one
//! time slot** and then starts a full breadth-first search `BFS_v`. The wait
//! plus the pebble's travel time guarantee (Lemma 1) that no node is ever
//! active for two BFS waves in the same round, so no edge ever needs to
//! carry two wave messages at once and every wave runs at full speed.
//!
//! Total rounds: `O(D)` to build `T_1`, `O(n)` for the traversal (each tree
//! edge is crossed twice, each first visit holds the pebble one slot), and
//! `O(D)` for the last wave to finish — `O(n)` overall since `D < n`.
//!
//! The simulator *checks* Lemma 1 as a side effect: were two waves ever to
//! collide on an edge, the run would abort with a duplicate-send error.
//!
//! Following Remark 4, every node records its distance to each root, so the
//! result is the full distance matrix (stored distributedly in the model;
//! assembled into a [`DistanceMatrix`] here for inspection). Shortest-path
//! trees are kept as per-root parent pointers. As a by-product the nodes
//! also record *cycle candidates* (two wave receipts for the same root),
//! which is exactly what Lemma 7 needs to compute the girth.

use dapsp_congest::{
    Config, FaultPlan, NodeContext, ObserverHandle, RunStats, TerminationCertificate, Topology,
    TopologyPlan,
};
use dapsp_graph::{DistanceMatrix, Graph, INFINITY};

use crate::bfs;
use crate::churned::{run_repair, ChurnedResult, RepairMode};
use crate::error::CoreError;
use crate::kernel::{
    run_protocol_on, split_reliable_report, Coupling, PebbleKernel, RelStats, ReliableKernel,
    Stack, WaveKernel, WaveState,
};
use crate::observe::Obs;
use crate::runner::fold_outputs;
use crate::tree::TreeKnowledge;

/// The pebble-to-wave wiring of Algorithm 1: the round the pebble leaves
/// a first-visited node (after the paper's one-slot wait, or immediately
/// in the ablation), that node's own `BFS_v` starts — the staggering that
/// Lemma 1 turns into a congestion-free wave schedule.
struct StartWaveOnRelease;

impl Coupling<PebbleKernel, WaveKernel> for StartWaveOnRelease {
    fn couple(&mut self, _ctx: &NodeContext<'_>, pebble: &mut PebbleKernel, wave: &mut WaveKernel) {
        if pebble.take_released() {
            wave.schedule_start();
        }
    }
}

/// The result of a distributed APSP computation.
#[derive(Clone, Debug)]
pub struct ApspResult {
    /// The full hop-distance matrix (`distances.get(u, v)` = `d(u, v)`).
    pub distances: DistanceMatrix,
    /// `next_hop[v][r]` is the neighbor `v` forwards to on a shortest path
    /// toward `r` (its parent in `T_r`), or `None` at `v == r`.
    pub next_hop: Vec<Vec<Option<u32>>>,
    /// The smallest cycle candidate any node observed, i.e. the girth, or
    /// `None` if no wave ever hit a node twice (the graph is a tree).
    pub girth_candidate: Option<u32>,
    /// Each node's own smallest cycle candidate
    /// ([`INFINITY`] if it saw none) — the local
    /// values that Lemma 7 min-aggregates.
    pub local_girth_candidates: Vec<u32>,
    /// The tree `T_1` built in phase A — reused by the `O(D)` aggregations
    /// of Lemmas 3–7.
    pub tree: TreeKnowledge,
    /// Combined statistics of both phases (`T_1` construction + waves).
    pub stats: RunStats,
    /// Why the wave phase was allowed to stop — the engine's auditable
    /// quiescence record, carried so downstream consumers (the
    /// `dapsp-serve` snapshot layer) can attribute every answer to a
    /// certified run.
    pub certificate: Option<TerminationCertificate>,
}

impl ApspResult {
    /// Reconstructs one shortest path from `u` to `v` (inclusive) by
    /// following next-hop pointers.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn path(&self, u: u32, v: u32) -> Vec<u32> {
        let mut path = vec![u];
        let mut cur = u;
        while cur != v {
            match self.next_hop[cur as usize][v as usize] {
                Some(next) => {
                    path.push(next);
                    cur = next;
                }
                None => unreachable!("connected graph has a complete next-hop table"),
            }
        }
        path
    }
}

/// Runs Algorithm 1: exact all-pairs shortest paths in `O(n)` rounds.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] on an empty graph.
/// * [`CoreError::Disconnected`] if the graph is not connected (the model
///   assumes a connected network).
/// * [`CoreError::Sim`] on simulator failures — which would indicate a
///   violation of Lemma 1.
///
/// # Examples
///
/// ```
/// use dapsp_core::apsp;
/// use dapsp_graph::{generators, reference};
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::grid(3, 3);
/// let result = apsp::run(&g)?;
/// assert_eq!(result.distances, reference::apsp(&g));
/// # Ok(())
/// # }
/// ```
pub fn run(graph: &Graph) -> Result<ApspResult, CoreError> {
    run_with_wait(graph, true)
}

/// Like [`run`], but over a prebuilt [`Topology`] — used by the metric and
/// girth pipelines, which follow APSP with `O(D)` aggregations over the
/// same graph.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_on(topology: &Topology) -> Result<ApspResult, CoreError> {
    run_on_obs(topology, Obs::none())
}

/// Like [`run_on`], with an optional observer attached: the `T_1` phase
/// reports as `"bfs"` and the pebble + wave phase as `"apsp:waves"`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_on_obs(topology: &Topology, obs: Obs<'_>) -> Result<ApspResult, CoreError> {
    run_phases(topology, true, u32::MAX, false, obs).map(|(result, _)| result)
}

/// Like [`run`], streaming round/message/timing events of both phases to
/// `observer` (see [`dapsp_congest::obs`]). Attach a
/// [`MetricsRecorder`](dapsp_congest::MetricsRecorder) to get the
/// per-round metric stream, or congestion probes to check the paper's
/// Lemma 1 on a live run.
///
/// # Errors
///
/// Same as [`run`].
///
/// # Examples
///
/// ```
/// use dapsp_congest::{MetricsRecorder, SharedObserver};
/// use dapsp_core::apsp;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let recorder = SharedObserver::new(MetricsRecorder::new());
/// let result = apsp::run_observed(&generators::cycle(8), &recorder.observer())?;
/// let recorded: u64 = recorder.with(|r| r.stream().iter().map(|m| m.messages).sum());
/// assert_eq!(recorded, result.stats.messages);
/// # Ok(())
/// # }
/// ```
pub fn run_observed(graph: &Graph, observer: &ObserverHandle) -> Result<ApspResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_on_obs(&graph.to_topology(), Obs::watching(observer))
}

/// Like [`run`], but also returns the wave phase's per-round
/// delivered-message counts — the "shape" of the pipelined schedule, used
/// by the `figure_wave_pipeline` experiment to visualize Lemma 1's
/// congestion-free overlap.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_profiled(graph: &Graph) -> Result<(ApspResult, Vec<u64>), CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_phases(&graph.to_topology(), true, u32::MAX, true, Obs::none())
        .map(|(result, profile)| (result, profile.expect("profiling was requested")))
}

/// Like [`run`], over links a [`FaultPlan`] adversary drops messages
/// from: both phases run inside the
/// [`ReliableKernel`] synchronizer, so for
/// any loss rate `p < 1` the distance matrix, next hops, and girth
/// candidates are *bit-identical* to the fault-free run. The returned
/// [`RelStats`] aggregates both phases' transport cost; the result's
/// `stats.rounds` against a fault-free run's measures the round
/// inflation (≈ 2× fault-free, ≈ 2/(1−p)× under loss `p`).
///
/// # Errors
///
/// Same as [`run`]; an adversary no retransmission budget can beat (e.g.
/// a permanently severed link) fails loudly with a round-limit
/// [`CoreError::Sim`] instead of returning corrupted distances.
pub fn run_faulty(graph: &Graph, faults: FaultPlan) -> Result<(ApspResult, RelStats), CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_faulty_on(&graph.to_topology(), faults, Obs::none())
}

/// Like [`run_faulty`], over a prebuilt [`Topology`] with an optional
/// observer (`"bfs:reliable"` and `"apsp:waves:reliable"` phases) — the
/// entry point the fault-sweep benchmark drives.
///
/// # Errors
///
/// Same as [`run_faulty`].
pub fn run_faulty_on(
    topology: &Topology,
    faults: FaultPlan,
    obs: Obs<'_>,
) -> Result<(ApspResult, RelStats), CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    // Phase A: build T_1 reliably.
    let (t1, mut rel) = bfs::run_faulty_on(topology, 0, faults.clone(), obs)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    // Phase B: Theorem 1 bounds the fault-free pebble + wave phase by
    // 4n + 10 rounds; the horizon pads that.
    let horizon = 4 * n as u64 + 16;
    let config = obs
        .apply(Config::for_n(n), "apsp:waves:reliable")
        .with_faults(faults);
    let report = run_protocol_on(topology, config, |ctx| {
        ReliableKernel::new(
            Stack::coupled(
                PebbleKernel::new(ctx, &t1.tree, true),
                WaveKernel::all_roots(ctx, u32::MAX),
                StartWaveOnRelease,
            ),
            horizon,
            crate::bfs::FAULTY_MAX_RETRIES,
        )
    })?;
    let (report, rel_b) = split_reliable_report(report);
    obs.report_transport(&rel_b.summary());
    rel.absorb(&rel_b);
    Ok((assemble(topology, t1, report), rel))
}

/// Computes **all k-BFS trees** (Definition 7 of the paper): every node
/// learns its distance to every node within `k` hops, via the Algorithm 1
/// schedule with waves truncated at depth `k`. `O(n)` rounds.
///
/// Entries beyond distance `k` read back as `None`/[`INFINITY`] in the
/// matrix; [`KbfsResult::neighborhood_sizes`] gives each node's
/// `|N_k(v)|`, the quantity §8's Theorem 8 reduction asks about (all
/// `|N_2(v)| = n` iff the diameter is at most 2).
///
/// # Errors
///
/// Same as [`run`].
///
/// # Examples
///
/// ```
/// use dapsp_core::apsp;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::path(6);
/// let r = apsp::run_truncated(&g, 2)?;
/// assert_eq!(r.result.distances.get(0, 2), Some(2));
/// assert_eq!(r.result.distances.get(0, 3), None); // beyond depth 2
/// assert_eq!(r.neighborhood_sizes(), vec![3, 4, 5, 5, 4, 3]);
/// # Ok(())
/// # }
/// ```
pub fn run_truncated(graph: &Graph, k: u32) -> Result<KbfsResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_truncated_on(&graph.to_topology(), k)
}

/// Like [`run_truncated`], but over a prebuilt [`Topology`].
///
/// # Errors
///
/// Same as [`run`].
pub fn run_truncated_on(topology: &Topology, k: u32) -> Result<KbfsResult, CoreError> {
    run_phases(topology, true, k, false, Obs::none()).map(|(result, _)| KbfsResult { k, result })
}

/// The outcome of a truncated (k-BFS) run; see [`run_truncated`].
#[derive(Clone, Debug)]
pub struct KbfsResult {
    /// The truncation depth `k`.
    pub k: u32,
    /// The partial APSP result: distances beyond `k` are absent, the girth
    /// candidates only witness cycles of length at most `2k + 1`.
    pub result: ApspResult,
}

impl KbfsResult {
    /// `|N_k(v)|` per node: how many nodes (including `v`) lie within `k`
    /// hops. Row `v` of the matrix holds `d(v, u)` for exactly those `u`.
    pub fn neighborhood_sizes(&self) -> Vec<u32> {
        let n = self.result.distances.num_nodes();
        (0..n as u32)
            .map(|v| {
                self.result
                    .distances
                    .row(v)
                    .iter()
                    .filter(|&&d| d != INFINITY)
                    .count() as u32
            })
            .collect()
    }

    /// True iff every node's k-neighborhood is the whole graph — i.e. the
    /// diameter is at most `k` (the §8 / Theorem 8 predicate).
    pub fn covers_everything(&self) -> bool {
        let n = self.result.distances.num_nodes() as u32;
        self.neighborhood_sizes().iter().all(|&c| c == n)
    }
}

/// The Lemma 1 ablation: Algorithm 1 **without** the one-slot wait at
/// first visits.
///
/// The paper's wait is what spaces consecutive BFS starts far enough apart
/// that waves never contend for an edge. Without it the simulator's
/// bandwidth discipline detects the collision and the run fails with a
/// duplicate-send [`CoreError::Sim`] error on any graph where two waves
/// meet — demonstrating that the wait is load-bearing, not cosmetic.
///
/// # Errors
///
/// Usually [`CoreError::Sim`] with
/// [`SimError::DuplicateSend`](dapsp_congest::SimError::DuplicateSend);
/// same input validation as [`run`].
pub fn run_without_wait(graph: &Graph) -> Result<ApspResult, CoreError> {
    run_with_wait(graph, false)
}

/// Like [`run`], but over a network whose topology changes mid-run per
/// `plan`: every node maintains its full distance row through edge
/// insertions/removals and node churn via a
/// [`RepairKernel`](crate::kernel::RepairKernel) (affected-subtree
/// invalidation after removals, bounded relaxation waves after insertions,
/// adaptive full recompute on large batches). The returned
/// [`ChurnedResult`] holds the all-pairs distances on the *post-churn*
/// graph, with `roots = 0..n`.
///
/// Unlike the static [`run`], the repair protocol does not use the pebble
/// schedule (waves must be restartable), so disconnected post-churn graphs
/// are fine: unreachable pairs report
/// [`INFINITY`].
///
/// # Errors
///
/// Same as [`run`] minus the connectivity requirement; a plan that does
/// not apply cleanly surfaces as [`CoreError::Sim`].
pub fn run_churned(graph: &Graph, plan: &TopologyPlan) -> Result<ChurnedResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_churned_on(&graph.to_topology(), plan, Obs::none())
}

/// Like [`run_churned`], over a prebuilt [`Topology`] with an optional
/// observer (phase label `"apsp:churn"`).
///
/// # Errors
///
/// Same as [`run_churned`].
pub fn run_churned_on(
    topology: &Topology,
    plan: &TopologyPlan,
    obs: Obs<'_>,
) -> Result<ChurnedResult, CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let roots: Vec<u32> = (0..n as u32).collect();
    run_repair(topology, plan, roots, RepairMode::All, obs, "apsp:churn")
}

fn run_with_wait(graph: &Graph, wait_one_slot: bool) -> Result<ApspResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_phases(
        &graph.to_topology(),
        wait_one_slot,
        u32::MAX,
        false,
        Obs::none(),
    )
    .map(|(result, _)| result)
}

/// The shared two-phase pipeline behind every Algorithm 1 variant:
/// phase A builds `T_1`, phase B runs the pebble + (possibly truncated)
/// waves, optionally recording the per-round activity profile. Both phases
/// share the caller's topology.
fn run_phases(
    topology: &Topology,
    wait_one_slot: bool,
    max_depth: u32,
    profile: bool,
    obs: Obs<'_>,
) -> Result<(ApspResult, Option<Vec<u64>>), CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    // Phase A: build T_1 (BFS from node 0, the smallest id).
    let t1 = bfs::run_on_obs(topology, 0, obs)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    // Phase B: pebble traversal + one BFS wave per node.
    let mut config = obs.apply(Config::for_n(n), "apsp:waves");
    if profile {
        config = config.with_round_profile();
    }
    let report = run_protocol_on(topology, config, |ctx| {
        Stack::coupled(
            PebbleKernel::new(ctx, &t1.tree, wait_one_slot),
            WaveKernel::all_roots(ctx, max_depth),
            StartWaveOnRelease,
        )
    })?;
    let round_profile = profile.then(|| report.round_profile.clone());
    Ok((assemble(topology, t1, report), round_profile))
}

/// Folds per-node outputs into the host-side result structure.
fn assemble(
    topology: &Topology,
    t1: crate::bfs::BfsResult,
    report: dapsp_congest::Report<((), WaveState)>,
) -> ApspResult {
    let n = topology.num_nodes();
    let seed = (
        DistanceMatrix::new(n),
        vec![vec![None; n]; n],
        INFINITY,
        vec![INFINITY; n],
    );
    let (distances, next_hop, girth_candidate, local_girth_candidates) =
        fold_outputs(report.outputs, seed, |acc, v, (_, state)| {
            acc.0.set_row(v, &state.dist);
            for (r, &p) in state.parent.iter().enumerate() {
                if p != u32::MAX {
                    acc.1[v as usize][r] = Some(topology.neighbor_at(v, p));
                }
            }
            acc.3[v as usize] = state.girth_candidate;
            acc.2 = acc.2.min(state.girth_candidate);
        });
    let mut stats = t1.stats;
    stats.absorb_sequential(&report.stats);
    ApspResult {
        distances,
        next_hop,
        girth_candidate: if girth_candidate == INFINITY {
            None
        } else {
            Some(girth_candidate)
        },
        local_girth_candidates,
        tree: t1.tree,
        stats,
        certificate: report.certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    fn check_against_oracle(g: &Graph) -> ApspResult {
        let result = run(g).unwrap();
        assert_eq!(result.distances, reference::apsp(g));
        result
    }

    #[test]
    fn matches_oracle_on_zoo() {
        check_against_oracle(&generators::path(12));
        check_against_oracle(&generators::cycle(11));
        check_against_oracle(&generators::star(9));
        check_against_oracle(&generators::complete(7));
        check_against_oracle(&generators::grid(4, 5));
        check_against_oracle(&generators::balanced_tree(3, 3));
        check_against_oracle(&generators::hypercube(4));
        check_against_oracle(&generators::lollipop(5, 7));
        check_against_oracle(&generators::barbell(5, 4));
        check_against_oracle(&generators::double_broom(20, 7));
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::erdos_renyi_connected(30, 0.12, seed);
            check_against_oracle(&g);
        }
    }

    #[test]
    fn single_node() {
        let g = Graph::builder(1).build();
        let r = run(&g).unwrap();
        assert_eq!(r.distances.get(0, 0), Some(0));
        assert_eq!(r.girth_candidate, None);
    }

    #[test]
    fn reliable_apsp_is_exact_under_loss() {
        for (g, seed) in [
            (generators::cycle(8), 3u64),
            (generators::grid(3, 3), 7),
            (generators::lollipop(4, 4), 11),
        ] {
            let clean = run(&g).unwrap();
            let (faulty, rel) = run_faulty(&g, FaultPlan::uniform_loss(0.1, seed)).unwrap();
            assert_eq!(faulty.distances, reference::apsp(&g));
            assert_eq!(faulty.distances, clean.distances);
            assert_eq!(faulty.next_hop, clean.next_hop);
            assert_eq!(faulty.girth_candidate, clean.girth_candidate);
            assert_eq!(faulty.local_girth_candidates, clean.local_girth_candidates);
            assert!(faulty.stats.dropped > 0, "adversary never fired");
            assert!(rel.retransmissions > 0, "loss never forced a retransmit");
            assert!(!rel.gave_up);
            assert_eq!(rel.truncated_sends, 0, "horizon cut the run short");
            // Shutdown quiescence ends the run at the wrapped protocol's
            // actual quiescence round, not the padded worst-case horizon.
            let horizon = 4 * g.num_nodes() as u64 + 16;
            assert!(
                rel.sim_rounds < horizon,
                "early shutdown should beat the {horizon}-round horizon (simulated {})",
                rel.sim_rounds
            );
        }
    }

    #[test]
    fn reliable_apsp_matches_clean_run_without_faults() {
        let g = generators::grid(3, 4);
        let clean = run(&g).unwrap();
        let (faulty, rel) = run_faulty(&g, FaultPlan::new(5)).unwrap();
        assert_eq!(faulty.distances, clean.distances);
        assert_eq!(faulty.girth_candidate, clean.girth_candidate);
        assert_eq!(
            rel.retransmissions, 0,
            "fault-free runs must not retransmit"
        );
        assert_eq!(faulty.stats.dropped, 0);
        assert!(
            rel.sim_rounds < 4 * g.num_nodes() as u64 + 16,
            "fault-free reliable run should quiesce before the horizon (simulated {})",
            rel.sim_rounds
        );
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = Graph::builder(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        assert_eq!(run(&b.build()).unwrap_err(), CoreError::Disconnected);
    }

    #[test]
    fn theorem1_linear_round_bound() {
        // rounds <= T1 (ecc+2) + traversal (2(n-1) tree-edge hops + n holds)
        // + last wave (<= D) + slack. A generous linear cap: 4n + 10.
        for g in [
            generators::path(40),
            generators::cycle(40),
            generators::erdos_renyi_connected(40, 0.1, 1),
            generators::star(40),
        ] {
            let n = g.num_nodes() as u64;
            let r = run(&g).unwrap();
            assert!(
                r.stats.rounds <= 4 * n + 10,
                "rounds={} n={n}",
                r.stats.rounds
            );
        }
    }

    #[test]
    fn girth_candidates_match_oracle_girth() {
        for g in [
            generators::cycle(9),
            generators::complete(6),
            generators::grid(3, 4),
            generators::lollipop(7, 5),
            generators::hypercube(3),
        ] {
            let r = run(&g).unwrap();
            assert_eq!(r.girth_candidate, reference::girth(&g));
        }
        // Trees produce no candidate at all.
        let r = run(&generators::balanced_tree(2, 4)).unwrap();
        assert_eq!(r.girth_candidate, None);
    }

    #[test]
    fn next_hop_paths_are_shortest() {
        let g = generators::grid(4, 4);
        let r = run(&g).unwrap();
        for u in 0..16u32 {
            for v in 0..16u32 {
                let path = r.path(u, v);
                assert_eq!(path.len() as u32 - 1, r.distances.get(u, v).unwrap());
                assert_eq!(*path.first().unwrap(), u);
                assert_eq!(*path.last().unwrap(), v);
                for w in path.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn message_volume_is_order_n_times_m() {
        // Each wave crosses each edge at most once per direction, plus the
        // pebble's 2(n-1) hops and T1 construction.
        let g = generators::grid(5, 5);
        let (n, m) = (g.num_nodes() as u64, g.num_edges() as u64);
        let r = run(&g).unwrap();
        assert!(r.stats.messages <= 2 * m * n + 2 * (n - 1) + 4 * m);
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use dapsp_congest::SimError;
    use dapsp_graph::generators;

    /// The one-slot wait is load-bearing: without it, the forwarded wave of
    /// an earlier root and the freshly started wave collide on an edge, and
    /// the simulator's bandwidth discipline catches it.
    #[test]
    fn removing_the_wait_violates_lemma_1() {
        for g in [
            generators::path(8),
            generators::cycle(9),
            generators::grid(3, 3),
            generators::erdos_renyi_connected(16, 0.2, 4),
        ] {
            match run_without_wait(&g) {
                Err(CoreError::Sim(SimError::DuplicateSend { .. })) => {}
                other => panic!("expected a duplicate-send violation, got {other:?}"),
            }
        }
    }

    /// Control: with the wait, the same instances run clean.
    #[test]
    fn with_the_wait_the_same_instances_run_clean() {
        for g in [
            generators::path(8),
            generators::cycle(9),
            generators::grid(3, 3),
            generators::erdos_renyi_connected(16, 0.2, 4),
        ] {
            assert!(run(&g).is_ok());
        }
    }
}

#[cfg(test)]
mod kbfs_tests {
    use super::*;
    use dapsp_graph::{generators, lowerbound, reference};

    #[test]
    fn truncated_distances_match_oracle_within_k() {
        for g in [
            generators::grid(4, 4),
            generators::cycle(11),
            generators::erdos_renyi_connected(24, 0.12, 5),
        ] {
            let oracle = reference::apsp(&g);
            for k in [0u32, 1, 2, 3] {
                let r = run_truncated(&g, k).unwrap();
                for u in 0..g.num_nodes() as u32 {
                    for v in 0..g.num_nodes() as u32 {
                        let want = oracle.get(u, v).filter(|&d| d <= k);
                        assert_eq!(r.result.distances.get(u, v), want, "k={k} u={u} v={v}");
                    }
                }
            }
        }
    }

    #[test]
    fn neighborhood_census_matches_oracle() {
        let g = generators::barabasi_albert(30, 2, 4);
        let oracle = reference::apsp(&g);
        let r = run_truncated(&g, 2).unwrap();
        let counts = r.neighborhood_sizes();
        for v in 0..30u32 {
            let want = (0..30u32)
                .filter(|&u| oracle.get(v, u).is_some_and(|d| d <= 2))
                .count() as u32;
            assert_eq!(counts[v as usize], want, "v={v}");
        }
    }

    /// The Theorem 8 / §8 reduction: all |N_2(v)| = n iff diameter <= 2,
    /// exercised on the hard family whose dichotomy encodes disjointness.
    #[test]
    fn theorem8_predicate_decides_the_hard_family() {
        for intersecting in [false, true] {
            let (a, b) = lowerbound::canonical_inputs(10, intersecting);
            let inst = lowerbound::girth3_two_bfs_hard(10, &a, &b);
            let r = run_truncated(&inst.graph, 2).unwrap();
            assert_eq!(
                r.covers_everything(),
                inst.expected_diameter <= 2,
                "intersecting={intersecting}"
            );
        }
    }

    #[test]
    fn truncation_saves_rounds_when_k_is_small() {
        // The schedule (pebble traversal) dominates the rounds either way,
        // but truncation never costs extra and the message volume
        // collapses: each wave wets <= 2 hops of edges instead of D.
        let g = generators::path(80);
        let full = run(&g).unwrap();
        let trunc = run_truncated(&g, 2).unwrap();
        assert!(trunc.result.stats.rounds <= full.stats.rounds);
        assert!(trunc.result.stats.messages * 4 < full.stats.messages);
    }

    #[test]
    fn k_zero_knows_only_itself() {
        let g = generators::complete(5);
        let r = run_truncated(&g, 0).unwrap();
        assert_eq!(r.neighborhood_sizes(), vec![1; 5]);
        assert!(!r.covers_everything());
    }
}

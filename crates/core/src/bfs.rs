//! Distributed breadth-first search — the building block of everything else.
//!
//! One BFS from a root builds the paper's tree `T_v` (Definition 8) in
//! `O(ecc(v))` rounds: the wave expands one hop per round, every node adopts
//! the lowest-index port that delivered the wave first as its parent, and
//! reports back so parents learn their children. Nodes also count how often
//! the wave reached them; a count above one at any node witnesses a cycle,
//! which is exactly the paper's Claim 1 tree test.
//!
//! The state machine is the shared [`WaveKernel`] in single-root,
//! adoption-announcing configuration; this module only validates input and
//! folds the per-node [`WaveState`]s into a [`BfsResult`].

use dapsp_congest::{Config, FaultPlan, Port, Topology, TopologyPlan};
use dapsp_graph::{Graph, INFINITY};

use crate::churned::{run_repair, ChurnedResult, RepairMode};
use crate::error::CoreError;
use crate::kernel::{
    run_protocol_on, split_reliable_report, RelStats, ReliableKernel, WaveKernel, WaveState,
};
use crate::observe::Obs;
use crate::runner::fold_outputs;
use crate::tree::TreeKnowledge;

/// Retransmissions allowed per frame per link in the `run_faulty`
/// variants. Loss decisions are an (effectively independent) hash per
/// attempt, so for any loss rate `p < 1` the chance of exhausting this is
/// `p^101` — unreachable; the bound exists so a totally severed link
/// (`p = 1`, or a crash window outlasting it) fails loudly instead of
/// spinning forever.
pub(crate) const FAULTY_MAX_RETRIES: u32 = 100;

/// What each node knows when the BFS quiesces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsNodeOutput {
    /// Distance to the root (`None` if never reached — disconnected graph).
    pub dist: Option<u32>,
    /// The port toward the parent in the BFS tree (`None` at the root and
    /// at unreached nodes).
    pub parent_port: Option<Port>,
    /// The ports toward this node's children in the BFS tree.
    pub children_ports: Vec<Port>,
    /// How many times the wave reached this node. A value `> 1` anywhere
    /// proves the graph is not a tree (Claim 1).
    pub wave_receipts: u32,
}

impl BfsNodeOutput {
    /// Reads the single-root slot of a wave kernel's final state.
    fn from_wave(state: WaveState) -> Self {
        BfsNodeOutput {
            dist: (state.dist[0] != INFINITY).then_some(state.dist[0]),
            parent_port: (state.parent[0] != u32::MAX).then_some(state.parent[0]),
            children_ports: state.children_ports,
            wave_receipts: state.receipts,
        }
    }
}

/// The result of one distributed BFS.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// The root the search started from.
    pub root: u32,
    /// Hop distance from the root per node
    /// ([`INFINITY`] if unreached).
    pub dist: Vec<u32>,
    /// The tree structure (parents/children as node-local ports).
    pub tree: TreeKnowledge,
    /// True if some node received the wave more than once — by Claim 1 of
    /// the paper, this holds iff the graph is not a tree.
    pub cycle_detected: bool,
    /// Per-node wave receipt counts (the node-local Claim 1 evidence).
    pub receipts: Vec<u32>,
    /// Round/message statistics of the run.
    pub stats: dapsp_congest::RunStats,
}

impl BfsResult {
    /// The eccentricity of the root (max distance), or `None` if some node
    /// was unreached.
    pub fn root_eccentricity(&self) -> Option<u32> {
        let max = self.dist.iter().copied().max().unwrap_or(0);
        if max == INFINITY {
            None
        } else {
            Some(max)
        }
    }

    /// True if the BFS reached every node.
    pub fn reached_all(&self) -> bool {
        self.dist.iter().all(|&d| d != INFINITY)
    }
}

/// Runs a distributed BFS from `root` and returns distances, the BFS tree
/// `T_root`, and the Claim 1 cycle flag.
///
/// Takes `O(ecc(root))` rounds.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] if the graph has no nodes.
/// * [`CoreError::InvalidNode`] if `root >= n`.
/// * [`CoreError::Sim`] on simulator-level failures.
///
/// Note that a disconnected graph is *not* an error here: unreached nodes
/// simply keep infinite distance (check [`BfsResult::reached_all`]).
///
/// # Examples
///
/// ```
/// use dapsp_core::bfs;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::path(5);
/// let r = bfs::run(&g, 0)?;
/// assert_eq!(r.dist, vec![0, 1, 2, 3, 4]);
/// assert_eq!(r.root_eccentricity(), Some(4));
/// assert!(!r.cycle_detected);
/// # Ok(())
/// # }
/// ```
pub fn run(graph: &Graph, root: u32) -> Result<BfsResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_on(&graph.to_topology(), root)
}

/// Like [`run`], but over a prebuilt [`Topology`] — used by multi-phase
/// algorithms that run several simulations over the same graph.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_on(topology: &Topology, root: u32) -> Result<BfsResult, CoreError> {
    run_on_obs(topology, root, Obs::none())
}

/// Like [`run_on`], with an optional observer attached under the phase
/// label `"bfs"` — the hook multi-phase pipelines use so their `T_1`
/// construction shows up as its own phase in recorded metric streams.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_on_obs(topology: &Topology, root: u32, obs: Obs<'_>) -> Result<BfsResult, CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    if root as usize >= n {
        return Err(CoreError::InvalidNode {
            node: root,
            num_nodes: n,
        });
    }
    let config = obs.apply(Config::for_n(n), "bfs");
    let report = run_protocol_on(topology, config, |ctx| WaveKernel::single_root(ctx, root))?;
    Ok(fold_bfs(root, n, report))
}

/// Like [`run`], but over links a [`FaultPlan`] adversary drops messages
/// from: the wave kernel runs inside a
/// [`ReliableKernel`] synchronizer, so for
/// any loss rate `p < 1` the result is *bit-identical* to the fault-free
/// run — same distances, same tree, same Claim 1 verdict — at a measured
/// round-inflation cost reported through the returned [`RelStats`].
///
/// # Errors
///
/// Same as [`run`]; additionally, an adversary a link cannot get a frame
/// through (e.g. loss probability 1) stalls the run into
/// [`CoreError::Sim`] with a round-limit error rather than returning
/// corrupted distances.
pub fn run_faulty(
    graph: &Graph,
    root: u32,
    faults: FaultPlan,
) -> Result<(BfsResult, RelStats), CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_faulty_on(&graph.to_topology(), root, faults, Obs::none())
}

/// Like [`run_faulty`], over a prebuilt [`Topology`] with an optional
/// observer (phase label `"bfs:reliable"`) — the phase-A hook of the
/// faulty multi-phase pipelines.
///
/// # Errors
///
/// Same as [`run_faulty`].
pub fn run_faulty_on(
    topology: &Topology,
    root: u32,
    faults: FaultPlan,
    obs: Obs<'_>,
) -> Result<(BfsResult, RelStats), CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    if root as usize >= n {
        return Err(CoreError::InvalidNode {
            node: root,
            num_nodes: n,
        });
    }
    // Fault-free, the wave quiesces by ecc(root) + 3 ≤ n + 2 — the wave
    // front, one adopt round, one settle round.
    let horizon = n as u64 + 4;
    let config = obs
        .apply(Config::for_n(n), "bfs:reliable")
        .with_faults(faults);
    let report = run_protocol_on(topology, config, |ctx| {
        ReliableKernel::new(
            WaveKernel::single_root(ctx, root),
            horizon,
            FAULTY_MAX_RETRIES,
        )
    })?;
    let (report, rel) = split_reliable_report(report);
    obs.report_transport(&rel.summary());
    Ok((fold_bfs(root, n, report), rel))
}

/// Like [`run`], but over a network whose topology changes mid-run per
/// `plan`: a [`RepairKernel`](crate::kernel::RepairKernel) maintains the
/// root's distances through edge insertions/removals and node churn, and
/// the returned [`ChurnedResult`] holds distances on the *post-churn*
/// graph (validated against a fresh recompute by the conformance suite).
///
/// # Errors
///
/// Same as [`run`]; additionally a plan that does not apply cleanly to the
/// graph (removing a missing edge, …) surfaces as [`CoreError::Sim`].
pub fn run_churned(
    graph: &Graph,
    root: u32,
    plan: &TopologyPlan,
) -> Result<ChurnedResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_churned_on(&graph.to_topology(), root, plan, Obs::none())
}

/// Like [`run_churned`], over a prebuilt [`Topology`] with an optional
/// observer (phase label `"bfs:churn"`).
///
/// # Errors
///
/// Same as [`run_churned`].
pub fn run_churned_on(
    topology: &Topology,
    root: u32,
    plan: &TopologyPlan,
    obs: Obs<'_>,
) -> Result<ChurnedResult, CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    if root as usize >= n {
        return Err(CoreError::InvalidNode {
            node: root,
            num_nodes: n,
        });
    }
    run_repair(
        topology,
        plan,
        vec![root],
        RepairMode::Single(root),
        obs,
        "bfs:churn",
    )
}

/// Folds per-node wave states into the host-side [`BfsResult`].
fn fold_bfs(root: u32, n: usize, report: dapsp_congest::Report<WaveState>) -> BfsResult {
    let seed = BfsResult {
        root,
        dist: vec![INFINITY; n],
        tree: TreeKnowledge {
            root,
            parent_port: vec![None; n],
            children_ports: vec![Vec::new(); n],
        },
        cycle_detected: false,
        receipts: vec![0; n],
        stats: report.stats,
    };
    fold_outputs(report.outputs, seed, |acc, v, state| {
        let out = BfsNodeOutput::from_wave(state);
        let v = v as usize;
        if let Some(d) = out.dist {
            acc.dist[v] = d;
        }
        acc.tree.parent_port[v] = out.parent_port;
        acc.tree.children_ports[v] = out.children_ports;
        acc.receipts[v] = out.wave_receipts;
        if out.wave_receipts > 1 {
            acc.cycle_detected = true;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    #[test]
    fn distances_match_oracle_on_zoo() {
        let zoo: Vec<Graph> = vec![
            generators::path(9),
            generators::cycle(8),
            generators::star(7),
            generators::grid(3, 4),
            generators::complete(6),
            generators::balanced_tree(2, 3),
            generators::erdos_renyi_connected(24, 0.15, 3),
        ];
        for g in &zoo {
            for root in [0u32, (g.num_nodes() / 2) as u32] {
                let r = run(g, root).unwrap();
                assert_eq!(r.dist, reference::bfs(g, root));
            }
        }
    }

    #[test]
    fn runs_in_eccentricity_plus_constant_rounds() {
        let g = generators::path(20);
        let r = run(&g, 0).unwrap();
        // Wave reaches depth 19 in 19 rounds; adopt takes one more; the
        // final quiescence check adds at most one.
        assert!(r.stats.rounds <= 19 + 3, "rounds={}", r.stats.rounds);
    }

    #[test]
    fn tree_structure_is_consistent() {
        let g = generators::grid(4, 4);
        let r = run(&g, 5).unwrap();
        let parents = r.tree.parent_ids(&g);
        // Exactly the root has no parent; every parent is one hop closer.
        for v in 0..16u32 {
            if v == 5 {
                assert_eq!(parents[v as usize], None);
            } else {
                let p = parents[v as usize].unwrap();
                assert_eq!(r.dist[p as usize] + 1, r.dist[v as usize]);
                assert!(g.has_edge(v, p));
            }
        }
        // Children lists mirror parents.
        let children = r.tree.children_ids(&g);
        for v in 0..16u32 {
            for &c in &children[v as usize] {
                assert_eq!(parents[c as usize], Some(v));
            }
        }
    }

    #[test]
    fn claim1_tree_check() {
        assert!(
            !run(&generators::balanced_tree(3, 3), 0)
                .unwrap()
                .cycle_detected
        );
        assert!(!run(&generators::path(6), 3).unwrap().cycle_detected);
        assert!(run(&generators::cycle(6), 0).unwrap().cycle_detected);
        assert!(run(&generators::complete(4), 0).unwrap().cycle_detected);
        assert!(run(&generators::lollipop(5, 6), 8).unwrap().cycle_detected);
    }

    #[test]
    fn disconnected_graph_leaves_infinities() {
        let mut b = Graph::builder(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build();
        let r = run(&g, 0).unwrap();
        assert!(!r.reached_all());
        assert_eq!(r.root_eccentricity(), None);
        assert_eq!(r.dist[2], INFINITY);
    }

    #[test]
    fn invalid_root_is_rejected() {
        let g = generators::path(3);
        assert!(matches!(
            run(&g, 9).unwrap_err(),
            CoreError::InvalidNode { node: 9, .. }
        ));
    }

    #[test]
    fn parent_is_lowest_port_among_first_arrivals() {
        // In a 4-cycle 0-1-2-3, node 2 hears the wave from both 1 and 3 in
        // the same round; it must adopt the lower port (neighbor 1).
        let g = generators::cycle(4);
        let r = run(&g, 0).unwrap();
        let parents = r.tree.parent_ids(&g);
        assert_eq!(parents[2], Some(1));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::kernel::ProtocolHost;
    use dapsp_congest::Config;
    use dapsp_graph::generators;

    /// The model assumes reliable links; under injected loss the BFS wave
    /// dies and the shortfall is *detectable* (unreached nodes), not
    /// silent.
    #[test]
    fn message_loss_is_detectable() {
        let g = generators::path(12);
        let topo = g.to_topology();
        let cfg = Config::for_n(12).with_loss(1.0, 3);
        let sim = dapsp_congest::Simulator::new(&topo, cfg, |ctx| {
            ProtocolHost::new(WaveKernel::single_root(ctx, 0))
        });
        let report = sim.run().unwrap();
        // The root knows itself; every downstream message was dropped.
        let reached = report
            .outputs
            .iter()
            .filter(|state| state.dist[0] != INFINITY)
            .count();
        assert_eq!(reached, 1);
        assert!(report.stats.dropped > 0);
    }

    /// Mild loss on a well-connected graph may still reach everyone via
    /// redundant paths — but distances can then be wrong; the receipts and
    /// stats expose that the run was lossy.
    #[test]
    fn lossy_runs_are_flagged_by_stats() {
        let g = generators::complete(10);
        let topo = g.to_topology();
        let cfg = Config::for_n(10).with_loss(0.3, 5);
        let sim = dapsp_congest::Simulator::new(&topo, cfg, |ctx| {
            ProtocolHost::new(WaveKernel::single_root(ctx, 0))
        });
        let report = sim.run().unwrap();
        assert!(report.stats.dropped > 0, "loss must be visible in stats");
    }

    /// The reliable wrapper restores exactness: under the same kind of
    /// loss that corrupts a raw run, `run_faulty` reproduces the
    /// fault-free result bit for bit and reports the retransmission cost.
    #[test]
    fn reliable_bfs_is_exact_under_loss() {
        use dapsp_congest::FaultPlan;
        for g in [
            generators::path(9),
            generators::complete(7),
            generators::grid(3, 3),
        ] {
            let clean = run(&g, 0).unwrap();
            let (faulty, rel) = run_faulty(&g, 0, FaultPlan::uniform_loss(0.2, 9)).unwrap();
            assert_eq!(faulty.dist, clean.dist);
            assert_eq!(faulty.tree.parent_port, clean.tree.parent_port);
            assert_eq!(faulty.tree.children_ports, clean.tree.children_ports);
            assert_eq!(faulty.receipts, clean.receipts);
            assert_eq!(faulty.cycle_detected, clean.cycle_detected);
            assert!(faulty.stats.dropped > 0, "adversary must have fired");
            assert!(rel.retransmissions > 0, "losses must cost retransmissions");
            assert!(!rel.gave_up);
            assert_eq!(rel.truncated_sends, 0, "horizon must cover quiescence");
        }
    }

    /// Fault-free, the synchronizer's only cost is the ~2× lock-step
    /// overhead: zero retransmissions, and rounds within 2·horizon + O(1).
    #[test]
    fn reliable_bfs_round_inflation_is_bounded() {
        use dapsp_congest::FaultPlan;
        let g = generators::path(10);
        let (faulty, rel) = run_faulty(&g, 0, FaultPlan::new(1)).unwrap();
        assert_eq!(rel.retransmissions, 0);
        let horizon = 10 + 4;
        assert!(
            faulty.stats.rounds <= 2 * horizon + 4,
            "rounds={}",
            faulty.stats.rounds
        );
    }

    /// A fully severed link can never be recovered; the bounded retry
    /// budget turns it into a loud round-limit error, not a wrong answer.
    #[test]
    fn reliable_bfs_fails_loudly_when_loss_is_total() {
        use dapsp_congest::FaultPlan;
        let g = generators::path(4);
        let err = run_faulty(&g, 0, FaultPlan::uniform_loss(1.0, 2)).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Sim(dapsp_congest::SimError::RoundLimitExceeded { .. })
        ));
    }
}

//! Distributed k-dominating set construction (the paper's Lemma 10).
//!
//! The paper uses Kutten & Peleg's `Diam_DOM` as a black box with two
//! guarantees: the set has size at most `max{1, ⌊n/(k+1)⌋}` and costs
//! `O(D + k)` rounds. This module provides the same interface via the
//! classical bottom-up tree rule on the BFS tree `T_1` (see DESIGN.md for
//! the substitution note):
//!
//! Every node convergecasts a pair `(need, cover)` — the furthest
//! not-yet-dominated node in its subtree and the nearest chosen dominator
//! in its subtree. A node whose `need` reaches `k` joins the set (its whole
//! pending chain of `k+1` nodes is then covered), and the root joins if
//! anything is left pending. One convergecast = `O(depth(T_1)) = O(D)`
//! rounds; a final sum-aggregation tells every node `|DOM|`, which the
//! S-SP round budget needs.
//!
//! Every dominator placed below the root absorbs a private chain of `k+1`
//! nodes, which yields the Kutten–Peleg size bound.

use dapsp_congest::{
    bits_for_count, Config, Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port, RunStats,
    Topology,
};
use dapsp_graph::Graph;

use crate::aggregate::{self, AggOp};
use crate::error::CoreError;
use crate::observe::Obs;
use crate::runner::run_algorithm_on;
use crate::tree::TreeKnowledge;

/// Convergecast payload: the subtree summary `(need + 1, cover)`, both in
/// `0..=k+1`.
#[derive(Clone, Debug)]
struct DomMsg {
    /// `need + 1` where `need` is the max distance to a pending node
    /// (`0` encodes "nothing pending").
    need_plus_one: u32,
    /// Min distance to a chosen dominator, capped at `k + 1` (= "too far").
    cover: u32,
    /// The parameter `k`, fixing both fields' domain `0..=k+1`.
    k: u32,
}

impl Message for DomMsg {
    fn bit_size(&self) -> u32 {
        // Both fields are fixed-width over `0..=k+1`; charging by the
        // current values would under-count (a decoder cannot parse two
        // concatenated variable-width fields without delimiters).
        2 * bits_for_count(self.k as usize + 1)
    }
}

struct DomNode {
    k: u32,
    parent_port: Option<Port>,
    missing_children: usize,
    /// Accumulated over children: max pending depth (+1 encoding), min
    /// dominator distance.
    acc_need_plus_one: u32,
    acc_cover: u32,
    is_dominator: bool,
    done: bool,
}

impl DomNode {
    /// Combines children summaries with this node itself and applies the
    /// join rule; returns the summary to report upward.
    fn resolve(&mut self, is_root: bool) -> DomMsg {
        let k = self.k;
        // Children's pending nodes are one hop further from us; same for
        // their dominators.
        let mut need_plus_one = if self.acc_need_plus_one == 0 {
            0
        } else {
            self.acc_need_plus_one + 1
        };
        let mut cover = (self.acc_cover + 1).min(k + 1);
        // This node itself: pending unless a subtree dominator covers it.
        if cover > k {
            need_plus_one = need_plus_one.max(1);
        }
        // Cross-subtree coverage: if the furthest pending node can reach
        // the nearest dominator within k, everything pending is covered.
        if need_plus_one > 0 && need_plus_one - 1 + cover <= k {
            need_plus_one = 0;
        }
        // Join rule: a pending chain of depth k must be absorbed now —
        // waiting one more level would strand its deepest node.
        if need_plus_one == k + 1 || (is_root && need_plus_one > 0) {
            self.is_dominator = true;
            need_plus_one = 0;
            cover = 0;
        }
        DomMsg {
            need_plus_one,
            cover,
            k,
        }
    }

    fn absorb(&mut self, msg: &DomMsg) {
        self.acc_need_plus_one = self.acc_need_plus_one.max(msg.need_plus_one);
        self.acc_cover = self.acc_cover.min(msg.cover);
        self.missing_children -= 1;
    }
}

impl NodeAlgorithm for DomNode {
    type Message = DomMsg;
    type Output = bool;

    fn on_start(&mut self, _ctx: &NodeContext<'_>, out: &mut Outbox<DomMsg>) {
        if self.missing_children == 0 {
            let is_root = self.parent_port.is_none();
            let summary = self.resolve(is_root);
            self.done = true;
            if let Some(p) = self.parent_port {
                out.send(p, summary);
            }
        }
    }

    fn on_round(
        &mut self,
        _ctx: &NodeContext<'_>,
        inbox: &Inbox<DomMsg>,
        out: &mut Outbox<DomMsg>,
    ) {
        for (_port, msg) in inbox.iter() {
            self.absorb(msg);
        }
        if !self.done && self.missing_children == 0 {
            let is_root = self.parent_port.is_none();
            let summary = self.resolve(is_root);
            self.done = true;
            if let Some(p) = self.parent_port {
                out.send(p, summary);
            }
        }
    }

    fn into_output(self, _ctx: &NodeContext<'_>) -> bool {
        self.is_dominator
    }
}

/// The constructed k-dominating set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DominatingResult {
    /// `members[v]` is true iff `v` was chosen.
    pub members: Vec<bool>,
    /// `|DOM|`, known to every node (needed by the S-SP round budget).
    pub size: u64,
    /// The parameter `k` used.
    pub k: u32,
    /// Round/message statistics (convergecast + size aggregation).
    pub stats: RunStats,
}

impl DominatingResult {
    /// The chosen node ids, ascending.
    pub fn member_ids(&self) -> Vec<u32> {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(v, _)| v as u32)
            .collect()
    }
}

/// Builds a k-dominating set of size at most `max{1, ⌊n/(k+1)⌋}` over the
/// spanning tree `tree` in `O(D)` rounds, then sum-aggregates its size so
/// every node knows `|DOM|`.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] on an empty graph.
/// * [`CoreError::InvalidParameter`] if `tree` does not span the graph.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_core::{bfs, dominating};
/// use dapsp_graph::{generators, reference};
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::path(12);
/// let t1 = bfs::run(&g, 0)?;
/// let dom = dominating::run(&g, &t1.tree, 2)?;
/// assert!(reference::is_k_dominating_set(&g, &dom.member_ids(), 2));
/// assert!(dom.size <= 12 / 3);
/// # Ok(())
/// # }
/// ```
pub fn run(graph: &Graph, tree: &TreeKnowledge, k: u32) -> Result<DominatingResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_on(&graph.to_topology(), tree, k)
}

/// Like [`run`], but over a prebuilt [`Topology`] — used by the
/// approximation pipelines, which chain this with S-SP over the same graph.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_on(
    topology: &Topology,
    tree: &TreeKnowledge,
    k: u32,
) -> Result<DominatingResult, CoreError> {
    run_on_obs(topology, tree, k, Obs::none())
}

/// Like [`run_on`], with an optional observer attached: the selection
/// convergecast reports under the phase label `"dom:select"` and the size
/// aggregation under `"agg:sum"`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_on_obs(
    topology: &Topology,
    tree: &TreeKnowledge,
    k: u32,
    obs: Obs<'_>,
) -> Result<DominatingResult, CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    if !tree.spans_all() {
        return Err(CoreError::InvalidParameter(
            "dominating-set tree does not span the graph".into(),
        ));
    }
    let config = obs.apply(Config::for_n(n), "dom:select");
    let report = run_algorithm_on(topology, config, |ctx| {
        let v = ctx.node_id() as usize;
        DomNode {
            k,
            parent_port: tree.parent_port[v],
            missing_children: tree.children_ports[v].len(),
            acc_need_plus_one: 0,
            acc_cover: k + 1,
            is_dominator: false,
            done: false,
        }
    })?;
    let members = report.outputs;
    let flags: Vec<u64> = members.iter().map(|&m| u64::from(m)).collect();
    let sum = aggregate::run_on_obs(topology, tree, &flags, AggOp::Sum, obs)?;
    let mut stats = report.stats;
    stats.absorb_sequential(&sum.stats);
    Ok(DominatingResult {
        members,
        size: sum.value,
        k,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use dapsp_graph::{generators, reference};

    fn check(g: &Graph, k: u32) -> DominatingResult {
        let t1 = bfs::run(g, 0).unwrap();
        let dom = run(g, &t1.tree, k).unwrap();
        let ids = dom.member_ids();
        assert!(
            reference::is_k_dominating_set(g, &ids, k),
            "not {k}-dominating: {ids:?}"
        );
        assert_eq!(dom.size as usize, ids.len());
        let n = g.num_nodes() as u64;
        let bound = 1u64.max(n / (u64::from(k) + 1));
        assert!(
            dom.size <= bound,
            "size {} exceeds Kutten–Peleg bound {bound} (n={n}, k={k})",
            dom.size
        );
        dom
    }

    #[test]
    fn covers_and_respects_size_bound_on_zoo() {
        for k in [0u32, 1, 2, 3, 5] {
            check(&generators::path(17), k);
            check(&generators::cycle(12), k);
            check(&generators::star(9), k);
            check(&generators::grid(4, 5), k);
            check(&generators::balanced_tree(2, 4), k);
            check(&generators::complete(6), k);
            check(&generators::double_broom(20, 9), k);
        }
    }

    #[test]
    fn covers_random_graphs_and_trees() {
        for seed in 0..6 {
            check(&generators::random_tree(30, seed), 2);
            check(&generators::erdos_renyi_connected(28, 0.1, seed), 3);
        }
    }

    #[test]
    fn k_zero_selects_everyone() {
        let g = generators::path(5);
        let t1 = bfs::run(&g, 0).unwrap();
        let dom = run(&g, &t1.tree, 0).unwrap();
        assert_eq!(dom.size, 5);
    }

    #[test]
    fn huge_k_selects_single_node() {
        let g = generators::grid(3, 3);
        let t1 = bfs::run(&g, 0).unwrap();
        let dom = run(&g, &t1.tree, 100).unwrap();
        assert_eq!(dom.size, 1);
    }

    #[test]
    fn rounds_are_linear_in_depth() {
        let g = generators::path(40);
        let t1 = bfs::run(&g, 0).unwrap();
        let dom = run(&g, &t1.tree, 3).unwrap();
        // Convergecast is one sweep (≤ depth+2), the size aggregation two.
        assert!(
            dom.stats.rounds <= 3 * 40 + 10,
            "rounds={}",
            dom.stats.rounds
        );
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::builder(1).build();
        let t1 = bfs::run(&g, 0).unwrap();
        let dom = run(&g, &t1.tree, 4).unwrap();
        assert_eq!(dom.member_ids(), vec![0]);
    }

    use dapsp_graph::Graph;
}

/// Definition 9's partition `P`: every node assigned to one dominator at
/// distance at most `k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionResult {
    /// The underlying dominating set.
    pub dominating: DominatingResult,
    /// `dominator_of[v]` — the dominator `v` belongs to (its nearest one,
    /// smallest id on ties).
    pub dominator_of: Vec<u32>,
    /// `distance_to_dominator[v] <= k`.
    pub distance_to_dominator: Vec<u32>,
    /// Statistics across the construction, the DOM-SP, and the assignment.
    pub stats: dapsp_congest::RunStats,
}

/// Builds a k-dominating set and the partition of Definition 9 on top of
/// it: a DOM-SP run (Algorithm 2) gives every node its distances to all
/// dominators, and each node joins its nearest one. `O(n/(k+1) + D)`
/// rounds — the same cost the paper's Lemma 10 charges for `DOM` plus `P`.
///
/// # Errors
///
/// Same as [`run`], plus S-SP failures.
///
/// # Examples
///
/// ```
/// use dapsp_core::{bfs, dominating};
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::path(12);
/// let t1 = bfs::run(&g, 0)?;
/// let p = dominating::partition(&g, &t1.tree, 2)?;
/// for v in 0..12 {
///     assert!(p.distance_to_dominator[v] <= 2);
/// }
/// # Ok(())
/// # }
/// ```
pub fn partition(
    graph: &Graph,
    tree: &TreeKnowledge,
    k: u32,
) -> Result<PartitionResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    partition_on(&graph.to_topology(), tree, k)
}

/// Like [`partition`], but over a prebuilt [`Topology`].
///
/// # Errors
///
/// Same as [`partition`].
pub fn partition_on(
    topology: &Topology,
    tree: &TreeKnowledge,
    k: u32,
) -> Result<PartitionResult, CoreError> {
    let dominating = run_on(topology, tree, k)?;
    let sources = dominating.member_ids();
    let sp = crate::ssp::run_on(topology, &sources)?;
    let n = topology.num_nodes();
    let mut dominator_of = Vec::with_capacity(n);
    let mut distance_to_dominator = Vec::with_capacity(n);
    for v in 0..n {
        let (idx, &d) = sp.dist[v]
            .iter()
            .enumerate()
            .min_by_key(|&(i, &d)| (d, sources[i]))
            .expect("dominating set is nonempty");
        dominator_of.push(sources[idx]);
        distance_to_dominator.push(d);
    }
    let mut stats = dominating.stats;
    stats.absorb_sequential(&sp.stats);
    Ok(PartitionResult {
        dominating,
        dominator_of,
        distance_to_dominator,
        stats,
    })
}

#[cfg(test)]
mod partition_tests {
    use super::*;
    use crate::bfs;
    use dapsp_graph::{generators, reference};

    #[test]
    fn every_node_is_within_k_of_its_dominator() {
        for (g, k) in [
            (generators::path(20), 2u32),
            (generators::grid(4, 5), 1),
            (generators::erdos_renyi_connected(24, 0.12, 6), 3),
            (generators::cycle(15), 0),
        ] {
            let t1 = bfs::run(&g, 0).unwrap();
            let p = partition(&g, &t1.tree, k).unwrap();
            let oracle = reference::apsp(&g);
            for v in 0..g.num_nodes() as u32 {
                let dom = p.dominator_of[v as usize];
                assert!(
                    p.dominating.members[dom as usize],
                    "assigned to a dominator"
                );
                assert_eq!(
                    Some(p.distance_to_dominator[v as usize]),
                    oracle.get(v, dom),
                    "distance is exact"
                );
                assert!(p.distance_to_dominator[v as usize] <= k, "within k");
                // Nearest: no dominator is strictly closer.
                for u in p.dominating.member_ids() {
                    assert!(oracle.get(v, u).unwrap() >= p.distance_to_dominator[v as usize]);
                }
            }
        }
    }

    #[test]
    fn dominators_own_themselves() {
        let g = generators::grid(4, 4);
        let t1 = bfs::run(&g, 0).unwrap();
        let p = partition(&g, &t1.tree, 2).unwrap();
        for d in p.dominating.member_ids() {
            assert_eq!(p.dominator_of[d as usize], d);
            assert_eq!(p.distance_to_dominator[d as usize], 0);
        }
    }
}

#[cfg(test)]
mod width_tests {
    use super::*;

    /// Worst-case summaries fit the budget `B = 2⌈log₂ n⌉ + 8` even for
    /// `k = n`, and the width is fixed by the domain `0..=k+1`, not by the
    /// current field values.
    #[test]
    fn worst_case_width_fits_the_budget() {
        for n in [4usize, 100, 1 << 16] {
            let budget = Config::for_n(n).message_budget.unwrap();
            let k = n as u32;
            let worst = DomMsg {
                need_plus_one: k + 1,
                cover: k + 1,
                k,
            };
            assert!(worst.bit_size() <= budget, "n={n}");
            let idle = DomMsg {
                need_plus_one: 0,
                cover: 0,
                k,
            };
            assert_eq!(
                idle.bit_size(),
                worst.bit_size(),
                "width must be domain-fixed"
            );
        }
    }
}

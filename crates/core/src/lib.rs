//! Distributed all-pairs shortest paths and applications in the CONGEST
//! model — a reproduction of Holzer & Wattenhofer, *Optimal Distributed All
//! Pairs Shortest Paths and Applications* (PODC 2012).
//!
//! All algorithms run on the [`dapsp_congest`] simulator, which enforces the
//! `B = Θ(log n)`-bit per-edge bandwidth, and report the exact number of
//! synchronous rounds used — the paper's complexity measure. Pipelines can
//! also stream per-phase, per-round metrics to a live observer — see
//! [`observe`] and the `run_observed` entry points on [`apsp`], [`ssp`],
//! [`approx`], [`girth`], and [`metrics`].
//!
//! # What's here
//!
//! | Module | Paper reference | Rounds |
//! | --- | --- | --- |
//! | [`bfs`] | §4 (tree `T_1`), Claim 1 | `O(D)` |
//! | [`apsp`] | Algorithm 1, Theorem 1 | `O(n)` |
//! | [`ssp`] | Algorithm 2, Theorem 3 | `O(|S| + D)` |
//! | [`metrics`] | Lemmas 2–7 (ecc, diameter, radius, center, peripheral, girth) | `O(n)` |
//! | [`dominating`] | Lemma 10 (k-dominating set) | `O(D + k)` |
//! | [`approx`] | Theorem 4, Corollary 4, Theorem 5 | `O(n/D + D)`; girth `O(n/g + D log(D/g))` |
//! | [`two_vs_four`] | Algorithm 3, Theorem 7 | `O(√(n log n))` |
//! | [`three_halves`] | Corollary 1 | `O(min{D√n, n/D + D})` |
//!
//! # Quickstart
//!
//! ```
//! use dapsp_core::apsp;
//! use dapsp_graph::generators;
//!
//! # fn main() -> Result<(), dapsp_core::CoreError> {
//! let g = generators::cycle(10);
//! let result = apsp::run(&g)?;
//! assert_eq!(result.distances.get(0, 5), Some(5));
//! // Theorem 1: linear in n.
//! assert!(result.stats.rounds <= 4 * 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod runner;

pub mod aggregate;
pub mod approx;
pub mod apsp;
pub mod bfs;
pub mod churned;
pub mod dominating;
pub mod girth;
pub mod girth_approx;
pub mod kernel;
pub mod leader;
pub mod metrics;
pub mod observe;
pub mod routing;
pub mod ssp;
pub mod ssp_paper;
pub mod summary;
pub mod three_halves;
pub mod tree;
pub mod two_vs_four;

pub use churned::{churned_graph, ChurnedResult};
pub use error::CoreError;
pub use observe::Obs;
pub use runner::{fold_outputs, run_algorithm, run_algorithm_on};

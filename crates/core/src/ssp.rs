//! Algorithm 2 of the paper: S-Shortest-Paths in `O(|S| + D)` rounds
//! (Theorem 3) — `|S|` BFS trees, all grown **simultaneously**.
//!
//! Every source `v ∈ S` starts a BFS at the same time. When two searches
//! contend for an edge in the same round, the *smaller id wins* and the
//! larger is delayed; a delayed id waits in the per-port queue `L_i` until
//! it is transmitted successfully. The paper proves each search is delayed
//! at most once per smaller id, so after `|S| + D₀` rounds (where
//! `D₀ = 2·ecc(1)` is the broadcast diameter upper bound from Fact 1) every
//! node knows its distance to every source.
//!
//! Phases, with their honest round costs:
//!
//! 1. `BFS_1` builds `T_1` — `O(D)`;
//! 2. max-aggregation of depths over `T_1` computes and broadcasts
//!    `D₀ = 2·ecc(1)` (lines 7–12 of Algorithm 2) — `O(D)`;
//! 3. the simultaneous growth — `O(|S| + D)`. The paper runs it for a
//!    fixed `|S| + D₀` rounds; the simulator instead stops at quiescence
//!    (all queues drained, nothing in flight), which is exact by a
//!    standard relaxation argument, and reports the paper's budget
//!    alongside the measured rounds (see `SspResult::budget` and the
//!    deviation notes on `settle_round` / in DESIGN.md).
//!
//! As in Algorithm 1, nodes opportunistically record cycle candidates from
//! repeated wave arrivals; the girth approximation (Theorem 5) feeds on
//! them.

use dapsp_congest::{Config, FaultPlan, ObserverHandle, Report, RunStats, Topology, TopologyPlan};
use dapsp_graph::{Graph, INFINITY};

use crate::aggregate::{self, AggOp};
use crate::bfs;
use crate::churned::{run_repair, ChurnedResult, RepairMode};
use crate::error::CoreError;
use crate::kernel::{
    run_protocol_on, split_reliable_report, RelStats, ReliableKernel, WaveKernel, WaveState,
};
use crate::observe::Obs;
use crate::runner::fold_outputs;
use crate::tree::TreeKnowledge;

/// The result of an S-SP computation.
#[derive(Clone, Debug)]
pub struct SspResult {
    /// The source set, as given.
    pub sources: Vec<u32>,
    /// `dist[v][i]` = `d(v, sources[i])`.
    pub dist: Vec<Vec<u32>>,
    /// `next_hop[v][i]` = `v`'s parent in `T_{sources[i]}` (`None` at the
    /// source itself).
    pub next_hop: Vec<Vec<Option<u32>>>,
    /// The broadcast diameter bound `D₀ = 2·ecc(1)` (the paper's
    /// self-termination horizon `|S| + D₀`; see [`SspResult::budget`]).
    pub d0: u32,
    /// The paper's round budget `|S| + D₀` for the main loop. The
    /// simulator terminates the loop by quiescence instead, which is
    /// usually earlier; both are reported so Theorem 3's accounting can be
    /// checked.
    pub budget: u64,
    /// Per-node smallest cycle candidates observed during the growth
    /// ([`INFINITY`] = none) — used by Theorem 5.
    pub local_girth_candidates: Vec<u32>,
    /// Total distance relaxations across all nodes — how often an early
    /// claim was improved by a later, shorter one (rare under the
    /// `(dist, id)` send priority).
    pub relaxations: u64,
    /// The tree `T_1`, reusable for subsequent aggregations.
    pub tree: TreeKnowledge,
    /// Combined statistics of all three phases.
    pub stats: RunStats,
}

impl SspResult {
    /// Distance from `v` to source `s`, if `s` was in the source set.
    pub fn dist_to(&self, v: u32, s: u32) -> Option<u32> {
        let i = self.sources.iter().position(|&x| x == s)?;
        Some(self.dist[v as usize][i])
    }
}

/// Runs Algorithm 2: exact shortest paths from every node to every source
/// in `O(|S| + D)` rounds.
///
/// # Errors
///
/// * [`CoreError::EmptySourceSet`] if `sources` is empty.
/// * [`CoreError::InvalidNode`] for out-of-range sources, and
///   [`CoreError::InvalidParameter`] for duplicated sources.
/// * [`CoreError::EmptyGraph`] / [`CoreError::Disconnected`] on bad graphs.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_core::ssp;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::path(8);
/// let r = ssp::run(&g, &[0, 7])?;
/// assert_eq!(r.dist_to(3, 0), Some(3));
/// assert_eq!(r.dist_to(3, 7), Some(4));
/// # Ok(())
/// # }
/// ```
pub fn run(graph: &Graph, sources: &[u32]) -> Result<SspResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_on(&graph.to_topology(), sources)
}

/// Like [`run`], but over a prebuilt [`Topology`] — this is the entry point
/// the approximation pipelines use, sharing one topology across all phases.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_on(topology: &Topology, sources: &[u32]) -> Result<SspResult, CoreError> {
    run_on_obs(topology, sources, Obs::none())
}

/// Like [`run`], streaming round/message/timing events of every phase to
/// `observer`: `"bfs"` and `"agg:max"` for the `D₀` estimate, then
/// `"ssp:growth"` for the simultaneous growth itself. Since the growth's
/// announcements carry their source id as
/// [`stream_id`](dapsp_congest::Message::stream_id), a
/// [`WaveArrivalProbe`](dapsp_congest::obs::WaveArrivalProbe) attached
/// here can verify the paper's Lemma 8 delay bound directly.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_observed(
    graph: &Graph,
    sources: &[u32],
    observer: &ObserverHandle,
) -> Result<SspResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_on_obs(&graph.to_topology(), sources, Obs::watching(observer))
}

/// Like [`run_on`], with an optional observer attached (see
/// [`run_observed`] for the phase labels).
///
/// # Errors
///
/// Same as [`run`].
pub fn run_on_obs(
    topology: &Topology,
    sources: &[u32],
    obs: Obs<'_>,
) -> Result<SspResult, CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let is_source = validate_sources(n, sources)?;
    // Phase 1+2: T_1, then D0 = 2·ecc(1) via max-aggregation of depths.
    let t1 = bfs::run_on_obs(topology, 0, obs)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    let depths: Vec<u64> = t1.dist.iter().map(|&d| u64::from(d)).collect();
    let agg = aggregate::run_on_obs(topology, &t1.tree, &depths, AggOp::Max, obs)?;
    // Phase 3: the simultaneous growth, run to quiescence.
    let config = obs.apply(Config::for_n(n), "ssp:growth");
    let report = run_protocol_on(topology, config, |ctx| {
        WaveKernel::queued_sources(ctx, is_source[ctx.node_id() as usize])
    })?;
    Ok(assemble(topology, sources, t1, &agg, report))
}

/// Like [`run`], over links a [`FaultPlan`] adversary drops messages
/// from: all three phases (`T_1`, the `D₀` aggregation, and the
/// simultaneous growth) run inside the
/// [`ReliableKernel`], so the distances and
/// next hops are *bit-identical* to the fault-free run for any loss rate
/// below one. The returned [`RelStats`] sums the transport cost of all
/// phases.
///
/// # Errors
///
/// Same as [`run`]; an unbeatable adversary (a severed link) fails loudly
/// with a round-limit [`CoreError::Sim`].
pub fn run_faulty(
    graph: &Graph,
    sources: &[u32],
    faults: FaultPlan,
) -> Result<(SspResult, RelStats), CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_faulty_on(&graph.to_topology(), sources, faults, Obs::none())
}

/// Like [`run_faulty`], over a prebuilt [`Topology`] with an optional
/// observer (`"bfs:reliable"`, `"agg:max:reliable"`, and
/// `"ssp:growth:reliable"` phases).
///
/// # Errors
///
/// Same as [`run_faulty`].
pub fn run_faulty_on(
    topology: &Topology,
    sources: &[u32],
    faults: FaultPlan,
    obs: Obs<'_>,
) -> Result<(SspResult, RelStats), CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let is_source = validate_sources(n, sources)?;
    let (t1, mut rel) = bfs::run_faulty_on(topology, 0, faults.clone(), obs)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    let depths: Vec<u64> = t1.dist.iter().map(|&d| u64::from(d)).collect();
    let (agg, rel_agg) =
        aggregate::run_faulty_on(topology, &t1.tree, &depths, AggOp::Max, faults.clone(), obs)?;
    rel.absorb(&rel_agg);
    // Theorem 3 bounds the fault-free growth by |S| + D₀ ≤ |S| + 2(n−1)
    // rounds; the horizon pads that.
    let horizon = 2 * n as u64 + sources.len() as u64 + 8;
    let config = obs
        .apply(Config::for_n(n), "ssp:growth:reliable")
        .with_faults(faults);
    let report = run_protocol_on(topology, config, |ctx| {
        ReliableKernel::new(
            WaveKernel::queued_sources(ctx, is_source[ctx.node_id() as usize]),
            horizon,
            crate::bfs::FAULTY_MAX_RETRIES,
        )
    })?;
    let (report, rel_growth) = split_reliable_report(report);
    obs.report_transport(&rel_growth.summary());
    rel.absorb(&rel_growth);
    Ok((assemble(topology, sources, t1, &agg, report), rel))
}

/// Like [`run`], but over a network whose topology changes mid-run per
/// `plan`: distances to every source in `S` are maintained through edge
/// insertions/removals and node churn by a
/// [`RepairKernel`](crate::kernel::RepairKernel). The returned
/// [`ChurnedResult`] holds `d(v, s)` on the *post-churn* graph for every
/// source, with `roots = sources`.
///
/// The repair protocol skips the `T_1`/`D₀` preamble (its horizon comes
/// from quiescence plus the count-to-infinity clamp instead), so
/// disconnected post-churn graphs are fine: unreachable pairs report
/// [`INFINITY`].
///
/// # Errors
///
/// Same source-set validation as [`run`]; a plan that does not apply
/// cleanly surfaces as [`CoreError::Sim`].
pub fn run_churned(
    graph: &Graph,
    sources: &[u32],
    plan: &TopologyPlan,
) -> Result<ChurnedResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_churned_on(&graph.to_topology(), sources, plan, Obs::none())
}

/// Like [`run_churned`], over a prebuilt [`Topology`] with an optional
/// observer (phase label `"ssp:churn"`).
///
/// # Errors
///
/// Same as [`run_churned`].
pub fn run_churned_on(
    topology: &Topology,
    sources: &[u32],
    plan: &TopologyPlan,
    obs: Obs<'_>,
) -> Result<ChurnedResult, CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let is_source = validate_sources(n, sources)?;
    run_repair(
        topology,
        plan,
        sources.to_vec(),
        RepairMode::Sources(is_source),
        obs,
        "ssp:churn",
    )
}

/// Rejects empty, out-of-range, and duplicated source sets; returns the
/// source-membership mask.
fn validate_sources(n: usize, sources: &[u32]) -> Result<Vec<bool>, CoreError> {
    if sources.is_empty() {
        return Err(CoreError::EmptySourceSet);
    }
    let mut seen = vec![false; n];
    for &s in sources {
        if s as usize >= n {
            return Err(CoreError::InvalidNode {
                node: s,
                num_nodes: n,
            });
        }
        if seen[s as usize] {
            return Err(CoreError::InvalidParameter(format!(
                "source {s} listed twice"
            )));
        }
        seen[s as usize] = true;
    }
    Ok(seen)
}

/// Folds the growth-phase wave states into the [`SspResult`], merging the
/// statistics of all three phases.
fn assemble(
    topology: &Topology,
    sources: &[u32],
    t1: bfs::BfsResult,
    agg: &aggregate::AggregateResult,
    report: Report<WaveState>,
) -> SspResult {
    let n = topology.num_nodes();
    let d0 = 2 * agg.value as u32;
    let budget = sources.len() as u64 + u64::from(d0);
    let seed = (
        vec![Vec::with_capacity(sources.len()); n],
        vec![Vec::with_capacity(sources.len()); n],
        vec![INFINITY; n],
        0u64,
    );
    let (dist, next_hop, local_girth_candidates, relaxations) =
        fold_outputs(report.outputs, seed, |acc, v, state| {
            let v = v as usize;
            for &s in sources {
                acc.0[v].push(state.dist[s as usize]);
                let p = state.parent[s as usize];
                acc.1[v].push(if p == u32::MAX {
                    None
                } else {
                    Some(topology.neighbor_at(v as u32, p))
                });
            }
            acc.2[v] = state.girth_candidate;
            acc.3 += state.relaxations;
        });
    let mut stats = t1.stats;
    stats.absorb_sequential(&agg.stats);
    stats.absorb_sequential(&report.stats);
    debug_assert!(
        dist.iter().all(|row| row.iter().all(|&d| d != INFINITY)),
        "quiescence implies every source was learned on a connected graph"
    );
    SspResult {
        sources: sources.to_vec(),
        dist,
        next_hop,
        d0,
        budget,
        local_girth_candidates,
        relaxations,
        tree: t1.tree,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    fn check(g: &Graph, sources: &[u32]) -> SspResult {
        let r = run(g, sources).unwrap();
        let oracle = reference::s_shortest_paths(g, sources);
        for (i, &s) in sources.iter().enumerate() {
            for v in 0..g.num_nodes() as u32 {
                assert_eq!(
                    r.dist[v as usize][i], oracle[i][v as usize],
                    "d({v}, {s}) wrong"
                );
            }
        }
        r
    }

    #[test]
    fn matches_oracle_on_zoo() {
        check(&generators::path(12), &[0, 6, 11]);
        check(&generators::cycle(10), &[2, 7]);
        check(&generators::star(9), &[0, 3, 4, 5]);
        check(&generators::complete(6), &[1, 2]);
        check(&generators::grid(4, 4), &[0, 5, 15]);
        check(&generators::balanced_tree(2, 3), &[0, 7, 14]);
        check(&generators::lollipop(5, 6), &[0, 10]);
    }

    #[test]
    fn matches_oracle_on_random_graphs_with_many_sources() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_connected(26, 0.12, seed);
            let sources: Vec<u32> = (0..26).step_by(3).collect();
            check(&g, &sources);
        }
    }

    #[test]
    fn all_nodes_as_sources_is_apsp() {
        let g = generators::grid(3, 3);
        let sources: Vec<u32> = (0..9).collect();
        let r = check(&g, &sources);
        let apsp = reference::apsp(&g);
        for v in 0..9u32 {
            for (i, &s) in r.sources.iter().enumerate() {
                assert_eq!(Some(r.dist[v as usize][i]), apsp.get(v, s));
            }
        }
    }

    #[test]
    fn theorem3_round_bound() {
        // rounds <= BFS (ecc+2) + aggregation (2·ecc+3) + |S| + D0 + 1.
        for (g, s_count) in [
            (generators::path(30), 4usize),
            (generators::cycle(30), 10),
            (generators::erdos_renyi_connected(30, 0.15, 2), 15),
        ] {
            let sources: Vec<u32> = (0..s_count as u32).collect();
            let r = run(&g, &sources).unwrap();
            let ecc0 = reference::bfs(&g, 0).iter().copied().max().unwrap() as u64;
            let bound = (ecc0 + 2) + (2 * ecc0 + 4) + sources.len() as u64 + 2 * ecc0 + 2;
            assert!(
                r.stats.rounds <= bound,
                "rounds={} bound={bound}",
                r.stats.rounds
            );
        }
    }

    #[test]
    fn priority_contention_on_a_path_still_yields_exact_distances() {
        // All sources at one end: maximal contention on the single path.
        let g = generators::path(16);
        let sources: Vec<u32> = (0..8).collect();
        check(&g, &sources);
    }

    #[test]
    fn d0_is_twice_root_eccentricity() {
        let g = generators::double_broom(20, 8);
        let r = run(&g, &[0]).unwrap();
        let ecc0 = reference::bfs(&g, 0).iter().copied().max().unwrap();
        assert_eq!(r.d0, 2 * ecc0);
    }

    #[test]
    fn input_validation() {
        let g = generators::path(4);
        assert_eq!(run(&g, &[]).unwrap_err(), CoreError::EmptySourceSet);
        assert!(matches!(
            run(&g, &[9]).unwrap_err(),
            CoreError::InvalidNode { node: 9, .. }
        ));
        assert!(matches!(
            run(&g, &[1, 1]).unwrap_err(),
            CoreError::InvalidParameter(_)
        ));
    }

    #[test]
    fn next_hops_point_one_step_closer() {
        let g = generators::grid(4, 4);
        let r = run(&g, &[0, 15]).unwrap();
        for v in 0..16u32 {
            for (i, &s) in r.sources.iter().enumerate() {
                if v == s {
                    assert_eq!(r.next_hop[v as usize][i], None);
                } else {
                    let h = r.next_hop[v as usize][i].unwrap();
                    assert_eq!(r.dist[h as usize][i] + 1, r.dist[v as usize][i]);
                    assert!(g.has_edge(v, h));
                }
            }
        }
    }

    #[test]
    fn reliable_ssp_is_exact_under_loss() {
        for (g, sources, seed) in [
            (generators::path(10), vec![0, 9], 2u64),
            (generators::grid(3, 3), vec![0, 4, 8], 5),
            (generators::cycle(8), vec![1, 6], 13),
        ] {
            let clean = run(&g, &sources).unwrap();
            let (faulty, rel) =
                run_faulty(&g, &sources, FaultPlan::uniform_loss(0.1, seed)).unwrap();
            assert_eq!(faulty.dist, clean.dist);
            assert_eq!(faulty.next_hop, clean.next_hop);
            assert_eq!(faulty.d0, clean.d0);
            assert_eq!(faulty.local_girth_candidates, clean.local_girth_candidates);
            assert!(faulty.stats.dropped > 0, "adversary never fired");
            assert!(rel.retransmissions > 0, "loss never forced a retransmit");
            assert!(!rel.gave_up);
            assert_eq!(rel.truncated_sends, 0, "horizon cut the run short");
        }
    }

    #[test]
    fn girth_candidates_on_cycles() {
        let g = generators::cycle(9);
        let r = run(&g, &(0..9).collect::<Vec<_>>()).unwrap();
        let min = r.local_girth_candidates.iter().min().copied().unwrap();
        assert_eq!(min, 9);
    }
}

//! Shared plumbing for churn-tolerant shortest-path runs: the
//! [`ChurnedResult`] all three `run_churned` entry points ([`bfs`](crate::bfs),
//! [`apsp`](crate::apsp), [`ssp`](crate::ssp)) return, the
//! [`RepairKernel`]-driving runner behind them, and the
//! [`churned_graph`] oracle helper conformance tests recompute reference
//! answers on.
//!
//! A churned run hands the engine a
//! [`TopologyPlan`] next to the usual config; the engine applies each
//! event at its choke point, notifies affected nodes through
//! [`Protocol::on_topology`](crate::kernel::Protocol::on_topology), and the
//! repair kernel patches its distances in place (see the
//! [`kernel::repair`](crate::kernel::RepairKernel) docs for the policy).
//! When the run quiesces, every *present* node's distances equal a fresh
//! computation on the post-churn graph.

use dapsp_congest::{
    churned_topology, Config, Port, RunStats, TerminationCertificate, Topology, TopologyPlan,
};
use dapsp_graph::Graph;

use crate::error::CoreError;
use crate::kernel::{repair_threshold, run_protocol_on, RepairKernel};
use crate::observe::Obs;

/// The result of a churn-tolerant shortest-path run: distances on the
/// *post-churn* graph, per node per requested root.
#[derive(Clone, Debug)]
pub struct ChurnedResult {
    /// The roots/sources distances were maintained for, as requested.
    pub roots: Vec<u32>,
    /// `dist[v][i]` = hop distance from `v` to `roots[i]` on the final
    /// (post-churn) graph; [`INFINITY`](dapsp_graph::INFINITY) when
    /// unreachable. Rows of removed nodes are frozen at their last
    /// pre-removal state — check [`present`](Self::present).
    pub dist: Vec<Vec<u32>>,
    /// `parent_port[v][i]` = `v`'s port toward its parent in the repaired
    /// tree of `roots[i]` (`None` at the root and at unreached nodes).
    pub parent_port: Vec<Vec<Option<Port>>>,
    /// Whether each node is still part of the final topology; removed
    /// nodes keep their last outputs but no guarantee covers them.
    pub present: Vec<bool>,
    /// Statistics of the run — `topo_events`, `repaired_node_rounds` and
    /// `recompute_fallbacks` tell how the adaptive policy played out.
    pub stats: RunStats,
    /// Why the repair run was allowed to stop: the engine's final
    /// quiescence poll, carried so snapshot layers (`dapsp-serve`) can
    /// attribute republished tables to a certified run.
    pub certificate: Option<TerminationCertificate>,
}

impl ChurnedResult {
    /// Distance from `v` to `root` on the post-churn graph, if `root` was
    /// in the maintained set.
    pub fn dist_to(&self, v: u32, root: u32) -> Option<u32> {
        let i = self.roots.iter().position(|&r| r == root)?;
        Some(self.dist[v as usize][i])
    }
}

/// Which distances a churned run maintains.
pub(crate) enum RepairMode {
    /// One root (churned BFS).
    Single(u32),
    /// Every node (churned APSP).
    All,
    /// A source subset, as a membership mask (churned S-SP).
    Sources(Vec<bool>),
}

/// Runs a [`RepairKernel`] under `plan` and folds the per-node states into
/// a [`ChurnedResult`]. The round limit is stretched past the plan's last
/// event by the `O(n)` a repair (or count-to-infinity retraction chain)
/// can take.
pub(crate) fn run_repair(
    topology: &Topology,
    plan: &TopologyPlan,
    roots: Vec<u32>,
    mode: RepairMode,
    obs: Obs<'_>,
    phase: &str,
) -> Result<ChurnedResult, CoreError> {
    let n = topology.num_nodes();
    let mut config = obs
        .apply(Config::for_n(n), phase)
        .with_topology(plan.clone());
    let horizon = plan.last_round().unwrap_or(0) + 4 * n as u64 + 16;
    config.max_rounds = config.max_rounds.max(horizon);
    let threshold = repair_threshold(n);
    let report = run_protocol_on(topology, config, |ctx| match &mode {
        RepairMode::Single(root) => RepairKernel::single_root(ctx, *root, threshold),
        RepairMode::All => RepairKernel::all_roots(ctx, threshold),
        RepairMode::Sources(is_source) => {
            RepairKernel::sources(ctx, is_source[ctx.node_id() as usize], threshold)
        }
    })?;
    let final_topo = churned_topology(topology, plan)?;
    let slot_of: Vec<usize> = match mode {
        RepairMode::Single(_) => vec![0; roots.len()],
        _ => roots.iter().map(|&r| r as usize).collect(),
    };
    let mut dist = Vec::with_capacity(n);
    let mut parent_port = Vec::with_capacity(n);
    for state in &report.outputs {
        dist.push(slot_of.iter().map(|&s| state.dist[s]).collect::<Vec<_>>());
        parent_port.push(
            slot_of
                .iter()
                .map(|&s| (state.parent[s] != u32::MAX).then_some(state.parent[s]))
                .collect::<Vec<_>>(),
        );
    }
    let present = (0..n as u32).map(|v| final_topo.node_present(v)).collect();
    Ok(ChurnedResult {
        roots,
        dist,
        parent_port,
        present,
        stats: report.stats,
        certificate: report.certificate,
    })
}

/// The graph `graph` ends up as after every event of `plan` — the oracle
/// side of churn conformance: run the reference algorithms on this and
/// compare against a churned run's repaired outputs. Removed nodes stay in
/// the vertex set as isolated nodes (distances to them are
/// [`INFINITY`](dapsp_graph::INFINITY)).
///
/// # Errors
///
/// [`CoreError::Sim`] if the plan does not apply cleanly to the graph
/// (removing a missing edge, inserting a duplicate, …).
pub fn churned_graph(graph: &Graph, plan: &TopologyPlan) -> Result<Graph, CoreError> {
    let topo = churned_topology(&graph.to_topology(), plan)?;
    let adj = topo.to_adjacency();
    let mut b = Graph::builder(adj.len());
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            if (u as u32) < v {
                b.add_edge(u as u32, v)
                    .map_err(|e| CoreError::InvalidParameter(e.to_string()))?;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apsp, bfs, ssp};
    use dapsp_graph::{generators, reference, INFINITY};

    /// Repaired distances must equal a fresh reference BFS on the
    /// post-churn graph.
    fn assert_bfs_matches(g: &Graph, root: u32, plan: &TopologyPlan) {
        let r = bfs::run_churned(g, root, plan).unwrap();
        let oracle = reference::bfs(&churned_graph(g, plan).unwrap(), root);
        for (v, &want) in oracle.iter().enumerate() {
            if !r.present[v] {
                continue;
            }
            assert_eq!(
                r.dist[v][0], want,
                "node {v} after plan {plan:?}: got {}, oracle {want}",
                r.dist[v][0]
            );
        }
    }

    #[test]
    fn churned_bfs_repairs_a_removal() {
        let g = generators::cycle(8);
        assert_bfs_matches(&g, 0, &TopologyPlan::new().with_remove(2, 0, 1));
    }

    #[test]
    fn churned_bfs_uses_an_insertion() {
        let g = generators::path(8);
        let plan = TopologyPlan::new().with_insert(3, 0, 7);
        let r = bfs::run_churned(&g, 0, &plan).unwrap();
        assert_eq!(r.dist_to(7, 0), Some(1));
        assert_bfs_matches(&g, 0, &plan);
    }

    #[test]
    fn churned_bfs_retracts_when_disconnected() {
        // Removing the middle edge severs nodes 4..8 from the root; their
        // distances must retract to INFINITY (count-to-infinity clamp).
        let g = generators::path(8);
        let plan = TopologyPlan::new().with_remove(2, 3, 4);
        let r = bfs::run_churned(&g, 0, &plan).unwrap();
        for v in 4..8 {
            assert_eq!(r.dist[v][0], INFINITY, "node {v} must be unreachable");
        }
        assert_bfs_matches(&g, 0, &plan);
    }

    #[test]
    fn churned_bfs_handles_a_crash() {
        // Crashing node 2 of a cycle leaves a path; the survivors' repaired
        // distances match the oracle and the victim is flagged absent.
        let g = generators::cycle(6);
        let plan = TopologyPlan::new().with_crash(2, 2);
        let r = bfs::run_churned(&g, 0, &plan).unwrap();
        assert!(!r.present[2]);
        assert_bfs_matches(&g, 0, &plan);
    }

    #[test]
    fn churned_apsp_matches_oracle() {
        let g = generators::grid(3, 3);
        let plan = TopologyPlan::new()
            .with_remove(2, 0, 1)
            .with_insert(4, 0, 8);
        let r = apsp::run_churned(&g, &plan).unwrap();
        let oracle = reference::apsp(&churned_graph(&g, &plan).unwrap());
        for v in 0..9u32 {
            for root in 0..9u32 {
                assert_eq!(
                    r.dist_to(v, root),
                    oracle.get(v, root).or(Some(INFINITY)),
                    "d({v}, {root})"
                );
            }
        }
        assert_eq!(r.stats.topo_events, 2);
        assert!(r.stats.repaired_node_rounds > 0);
    }

    #[test]
    fn churned_ssp_matches_oracle() {
        let g = generators::grid(3, 3);
        let sources = [0u32, 8];
        let plan = TopologyPlan::new().with_remove(3, 4, 5);
        let r = ssp::run_churned(&g, &sources, &plan).unwrap();
        let mutated = churned_graph(&g, &plan).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            let oracle = reference::bfs(&mutated, s);
            for (v, &want) in oracle.iter().enumerate() {
                assert_eq!(r.dist[v][i], want, "d({v}, {s})");
            }
        }
        assert_eq!(r.roots, sources);
    }

    #[test]
    fn large_batches_trigger_the_adaptive_fallback() {
        // n = 9 → threshold max(4, 1) = 4; two removals in one round are 4
        // directed halves, so every notified node takes the full-recompute
        // branch and the counter records it.
        let g = generators::grid(3, 3);
        let plan = TopologyPlan::new()
            .with_remove(2, 0, 1)
            .with_remove(2, 4, 5);
        let r = apsp::run_churned(&g, &plan).unwrap();
        assert!(
            r.stats.recompute_fallbacks > 0,
            "batch of 4 halves must cross threshold 4"
        );
        let oracle = reference::apsp(&churned_graph(&g, &plan).unwrap());
        for v in 0..9u32 {
            for root in 0..9u32 {
                assert_eq!(r.dist_to(v, root), oracle.get(v, root).or(Some(INFINITY)));
            }
        }
    }

    #[test]
    fn single_removals_stay_below_the_fallback() {
        let g = generators::grid(3, 3);
        let plan = TopologyPlan::new().with_remove(2, 0, 1);
        let r = apsp::run_churned(&g, &plan).unwrap();
        assert_eq!(r.stats.recompute_fallbacks, 0, "2 halves < threshold 4");
        assert!(r.stats.repaired_node_rounds > 0);
    }

    #[test]
    fn churned_graph_applies_the_whole_plan() {
        let g = generators::path(4);
        let plan = TopologyPlan::new()
            .with_remove(1, 1, 2)
            .with_insert(2, 0, 3)
            .with_crash(3, 2);
        let mutated = churned_graph(&g, &plan).unwrap();
        assert_eq!(mutated.num_nodes(), 4);
        let d = reference::bfs(&mutated, 0);
        assert_eq!(d, vec![0, 1, INFINITY, 1]);
    }
}

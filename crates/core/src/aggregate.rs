//! Convergecast + broadcast aggregation over a rooted spanning tree.
//!
//! The paper repeatedly "aggregates the maximum/minimum using `T_1` in
//! additional time `O(D)`" (Lemmas 3–7). This module implements that
//! primitive distributedly: values flow up the tree (each node combines its
//! children's partial results with its own), the root learns the total, and
//! the total flows back down so *every* node knows it, as Definition 6
//! requires.

use dapsp_congest::{Config, FaultPlan, RunStats, Topology};
use dapsp_graph::Graph;

use crate::error::CoreError;
use crate::kernel::{
    run_protocol_on, split_reliable_report, ConvergecastKernel, RelStats, ReliableKernel,
};
use crate::observe::Obs;
use crate::tree::TreeKnowledge;

/// The associative, commutative operations supported by the aggregation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Maximum of all values.
    Max,
    /// Minimum of all values.
    Min,
    /// Sum of all values (caller must ensure the total fits the bandwidth —
    /// counts up to `n` always do).
    Sum,
    /// Logical OR of 0/1 values.
    Or,
}

impl AggOp {
    /// The phase label this aggregation reports to observers
    /// (`"agg:max"`, `"agg:min"`, `"agg:sum"`, `"agg:or"`).
    pub fn phase_label(self) -> &'static str {
        match self {
            AggOp::Max => "agg:max",
            AggOp::Min => "agg:min",
            AggOp::Sum => "agg:sum",
            AggOp::Or => "agg:or",
        }
    }

    /// Combines two partial values.
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            AggOp::Max => a.max(b),
            AggOp::Min => a.min(b),
            AggOp::Sum => a + b,
            AggOp::Or => a | b,
        }
    }
}

/// The outcome of a tree aggregation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateResult {
    /// The combined value, known to every node at the end.
    pub value: u64,
    /// Round/message statistics (about `2 · depth(T)` rounds).
    pub stats: RunStats,
}

/// Aggregates `values[v]` over all nodes with `op`, using the rooted tree
/// `tree`; every node learns the result (convergecast + broadcast,
/// `O(depth)` rounds).
///
/// Values must be small enough that any partial combination fits the
/// `B`-bit bandwidth; all uses in this crate send counts/distances
/// `≤ O(n)`.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] on an empty graph.
/// * [`CoreError::InvalidParameter`] if `values.len() != n` or the tree does
///   not span the graph.
/// * [`CoreError::Sim`] on simulator failures (e.g. a value too large for
///   the bandwidth).
///
/// # Examples
///
/// ```
/// use dapsp_core::{aggregate, bfs};
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::path(5);
/// let t1 = bfs::run(&g, 0)?;
/// let degrees: Vec<u64> = (0..5).map(|v| g.degree(v) as u64).collect();
/// let total = aggregate::run(&g, &t1.tree, &degrees, aggregate::AggOp::Sum)?;
/// assert_eq!(total.value, 8); // 2m
/// # Ok(())
/// # }
/// ```
pub fn run(
    graph: &Graph,
    tree: &TreeKnowledge,
    values: &[u64],
    op: AggOp,
) -> Result<AggregateResult, CoreError> {
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    run_on(&graph.to_topology(), tree, values, op)
}

/// Like [`run`], but over a prebuilt [`Topology`] — used by multi-phase
/// algorithms that aggregate repeatedly over the same graph.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_on(
    topology: &Topology,
    tree: &TreeKnowledge,
    values: &[u64],
    op: AggOp,
) -> Result<AggregateResult, CoreError> {
    run_on_obs(topology, tree, values, op, Obs::none())
}

/// Like [`run_on`], with an optional observer attached under the phase
/// label [`AggOp::phase_label`].
///
/// # Errors
///
/// Same as [`run`].
pub fn run_on_obs(
    topology: &Topology,
    tree: &TreeKnowledge,
    values: &[u64],
    op: AggOp,
    obs: Obs<'_>,
) -> Result<AggregateResult, CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    if values.len() != n {
        return Err(CoreError::InvalidParameter(format!(
            "got {} values for {} nodes",
            values.len(),
            n
        )));
    }
    if !tree.spans_all() {
        return Err(CoreError::InvalidParameter(
            "aggregation tree does not span the graph".into(),
        ));
    }
    let config = obs.apply(Config::for_n(n), op.phase_label());
    let report = run_protocol_on(topology, config, |ctx| {
        ConvergecastKernel::new(ctx, tree, values[ctx.node_id() as usize], op)
    })?;
    let value = report.outputs[tree.root as usize];
    debug_assert!(
        report.outputs.iter().all(|&r| r == value),
        "all nodes must agree on the aggregate"
    );
    Ok(AggregateResult {
        value,
        stats: report.stats,
    })
}

/// Like [`run_on_obs`], over links a [`FaultPlan`] drops messages from:
/// the convergecast runs inside the
/// [`ReliableKernel`], so the aggregate is
/// exact for any loss rate below one. Returns the transport statistics
/// alongside the result.
///
/// # Errors
///
/// Same as [`run`]; unbeatable adversaries fail loudly via
/// [`CoreError::Sim`].
pub fn run_faulty_on(
    topology: &Topology,
    tree: &TreeKnowledge,
    values: &[u64],
    op: AggOp,
    faults: FaultPlan,
    obs: Obs<'_>,
) -> Result<(AggregateResult, RelStats), CoreError> {
    let n = topology.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    if values.len() != n {
        return Err(CoreError::InvalidParameter(format!(
            "got {} values for {} nodes",
            values.len(),
            n
        )));
    }
    if !tree.spans_all() {
        return Err(CoreError::InvalidParameter(
            "aggregation tree does not span the graph".into(),
        ));
    }
    // Convergecast up plus broadcast down is 2·depth(T) + O(1) rounds
    // fault-free; depth ≤ n − 1.
    let horizon = 2 * n as u64 + 4;
    let label = match op {
        AggOp::Max => "agg:max:reliable",
        AggOp::Min => "agg:min:reliable",
        AggOp::Sum => "agg:sum:reliable",
        AggOp::Or => "agg:or:reliable",
    };
    let config = obs.apply(Config::for_n(n), label).with_faults(faults);
    let report = run_protocol_on(topology, config, |ctx| {
        ReliableKernel::new(
            ConvergecastKernel::new(ctx, tree, values[ctx.node_id() as usize], op),
            horizon,
            crate::bfs::FAULTY_MAX_RETRIES,
        )
    })?;
    let (report, rel) = split_reliable_report(report);
    obs.report_transport(&rel.summary());
    let value = report.outputs[tree.root as usize];
    debug_assert!(
        report.outputs.iter().all(|&r| r == value),
        "all nodes must agree on the aggregate"
    );
    Ok((
        AggregateResult {
            value,
            stats: report.stats,
        },
        rel,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use dapsp_graph::generators;

    fn setup(g: &Graph) -> TreeKnowledge {
        bfs::run(g, 0).unwrap().tree
    }

    #[test]
    fn all_ops_on_a_path() {
        let g = generators::path(6);
        let t = setup(&g);
        let values: Vec<u64> = vec![3, 1, 4, 1, 5, 9];
        assert_eq!(run(&g, &t, &values, AggOp::Max).unwrap().value, 9);
        assert_eq!(run(&g, &t, &values, AggOp::Min).unwrap().value, 1);
        assert_eq!(run(&g, &t, &values, AggOp::Sum).unwrap().value, 23);
        let bits: Vec<u64> = vec![0, 0, 1, 0, 0, 0];
        assert_eq!(run(&g, &t, &bits, AggOp::Or).unwrap().value, 1);
        assert_eq!(run(&g, &t, &[0; 6], AggOp::Or).unwrap().value, 0);
    }

    #[test]
    fn rounds_are_linear_in_depth() {
        let g = generators::path(30); // depth 29 from node 0
        let t = setup(&g);
        let r = run(&g, &t, &vec![1; 30], AggOp::Sum).unwrap();
        assert_eq!(r.value, 30);
        assert!(r.stats.rounds <= 2 * 29 + 4, "rounds={}", r.stats.rounds);
    }

    #[test]
    fn works_on_bushy_trees_and_cliques() {
        let g = generators::complete(8);
        let t = setup(&g);
        let r = run(&g, &t, &(0..8u64).collect::<Vec<_>>(), AggOp::Max).unwrap();
        assert_eq!(r.value, 7);
        assert!(r.stats.rounds <= 6);
        let g = generators::balanced_tree(3, 3);
        let t = setup(&g);
        let n = g.num_nodes();
        let r = run(&g, &t, &vec![1; n], AggOp::Sum).unwrap();
        assert_eq!(r.value, n as u64);
    }

    #[test]
    fn single_node_aggregation() {
        let g = Graph::builder(1).build();
        let t = setup(&g);
        let r = run(&g, &t, &[42], AggOp::Max).unwrap();
        assert_eq!(r.value, 42);
        assert_eq!(r.stats.rounds, 0);
    }

    #[test]
    fn rejects_wrong_value_count_and_nonspanning_tree() {
        let g = generators::path(4);
        let t = setup(&g);
        assert!(matches!(
            run(&g, &t, &[1, 2], AggOp::Max).unwrap_err(),
            CoreError::InvalidParameter(_)
        ));
        let mut broken = t.clone();
        broken.parent_port[3] = None;
        assert!(matches!(
            run(&g, &broken, &[1, 2, 3, 4], AggOp::Max).unwrap_err(),
            CoreError::InvalidParameter(_)
        ));
    }

    use dapsp_graph::Graph;
}

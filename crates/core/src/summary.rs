//! One-shot whole-network analysis: everything the paper derives from a
//! single APSP run (Lemmas 2–7), packaged behind one call.
//!
//! This is the "link-state alternative" reading of the paper: instead of
//! shipping the topology everywhere, run Algorithm 1 once and every global
//! property falls out with `O(D)` extra rounds each.

use dapsp_congest::RunStats;
use dapsp_graph::{DistanceMatrix, Graph, INFINITY};

use crate::aggregate::{self, AggOp};
use crate::apsp;
use crate::error::CoreError;
use crate::metrics;

/// Everything one APSP run yields.
#[derive(Clone, Debug)]
pub struct NetworkSummary {
    /// The full distance matrix.
    pub distances: DistanceMatrix,
    /// Per-node eccentricities.
    pub eccentricities: Vec<u32>,
    /// The diameter.
    pub diameter: u32,
    /// The radius.
    pub radius: u32,
    /// Center membership per node.
    pub center: Vec<bool>,
    /// Peripheral-vertex membership per node.
    pub peripheral: Vec<bool>,
    /// The girth (`None` for trees).
    pub girth: Option<u32>,
    /// Combined round/message statistics of the whole pipeline.
    pub stats: RunStats,
}

impl NetworkSummary {
    /// The center's node ids, ascending.
    pub fn center_ids(&self) -> Vec<u32> {
        self.center
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// The peripheral node ids, ascending.
    pub fn peripheral_ids(&self) -> Vec<u32> {
        self.peripheral
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(v, _)| v as u32)
            .collect()
    }
}

/// Runs Algorithm 1 once and derives all Lemma 2–7 quantities, with the
/// honest `O(D)` aggregation cost per derived value. Total: `O(n)` rounds.
///
/// # Errors
///
/// Propagates [`apsp::run`]'s errors and aggregation failures.
///
/// # Examples
///
/// ```
/// use dapsp_core::summary;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let s = summary::analyze(&generators::cycle(10))?;
/// assert_eq!(s.diameter, 5);
/// assert_eq!(s.radius, 5);
/// assert_eq!(s.girth, Some(10));
/// assert_eq!(s.center_ids().len(), 10);
/// # Ok(())
/// # }
/// ```
pub fn analyze(graph: &Graph) -> Result<NetworkSummary, CoreError> {
    let topology = graph.to_topology();
    let a = apsp::run_on(&topology)?;
    let bundle = metrics::from_apsp_on(&topology, &a)?;
    // Girth: min-aggregate the cycle candidates collected during the run
    // (or report a tree if none anywhere).
    let n = graph.num_nodes();
    let mut stats = bundle.stats;
    let sentinel = 2 * n as u64 + 2;
    let candidates: Vec<u64> = a
        .local_girth_candidates
        .iter()
        .map(|&c| {
            if c == INFINITY {
                sentinel
            } else {
                u64::from(c)
            }
        })
        .collect();
    let min = aggregate::run_on(&topology, &a.tree, &candidates, AggOp::Min)?;
    stats.absorb_sequential(&min.stats);
    // The sentinel surviving the aggregation means no node ever saw a
    // repeated wave: the graph is a tree (girth ∞).
    let girth = if min.value >= sentinel {
        None
    } else {
        Some(min.value as u32)
    };
    Ok(NetworkSummary {
        distances: a.distances,
        eccentricities: bundle.eccentricities,
        diameter: bundle.diameter,
        radius: bundle.radius,
        center: bundle.center,
        peripheral: bundle.peripheral,
        girth,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    #[test]
    fn summary_matches_all_oracles() {
        for g in [
            generators::grid(4, 5),
            generators::lollipop(6, 5),
            generators::erdos_renyi_connected(26, 0.12, 4),
            generators::balanced_tree(3, 3),
            generators::barabasi_albert(30, 2, 1),
        ] {
            let s = analyze(&g).unwrap();
            assert_eq!(s.distances, reference::apsp(&g));
            assert_eq!(Some(s.diameter), reference::diameter(&g));
            assert_eq!(Some(s.radius), reference::radius(&g));
            assert_eq!(Some(s.center_ids()), reference::center(&g));
            assert_eq!(Some(s.peripheral_ids()), reference::peripheral_vertices(&g));
            assert_eq!(s.girth, reference::girth(&g));
            assert_eq!(Some(s.eccentricities), reference::eccentricities(&g));
        }
    }

    #[test]
    fn rounds_stay_linear() {
        let g = generators::cycle(40);
        let s = analyze(&g).unwrap();
        // APSP (~3.5n on a cycle) plus three ~2D aggregations (D = n/2).
        assert!(s.stats.rounds <= 8 * 40, "rounds={}", s.stats.rounds);
    }
}

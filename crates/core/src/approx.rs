//! `(×, 1+ε)`-approximations in `O(n/D + D)` rounds (Theorem 4 and
//! Corollary 4 of the paper).
//!
//! The pipeline, with each phase's honest round cost:
//!
//! 1. `BFS_1` + max-aggregation → `D₀ = 2·ecc(1)`, a `(×,2)` diameter
//!    bound (Fact 1) — `O(D)`;
//! 2. `k := ⌊ε·D₀/4⌋`; build a k-dominating set `DOM` of size at most
//!    `max{1, ⌊n/(k+1)⌋} = O(n/(εD))` — `O(D)`;
//! 3. solve `DOM`-SP with Algorithm 2 — `O(|DOM| + D) = O(n/(εD) + D)`;
//! 4. every node `v` sets `ecc̃(v) := k + max_{u ∈ DOM} d(v, u)`, which
//!    satisfies `ecc(v) ≤ ecc̃(v) ≤ (1+ε)·ecc(v)`;
//! 5. diameter/radius estimates are one more `O(D)` aggregation; center and
//!    peripheral membership fall out by comparing against the broadcast
//!    threshold with a `2k` slack (every true member is kept; any extra
//!    member's true eccentricity is within `2k ≤ ε·D₀/2` of the threshold).

use dapsp_congest::{ObserverHandle, RunStats, Topology};
use dapsp_graph::Graph;

use crate::aggregate::{self, AggOp};
use crate::bfs;
use crate::dominating;
use crate::error::CoreError;
use crate::metrics::MembershipResult;
use crate::observe::Obs;
use crate::ssp;
use crate::tree::TreeKnowledge;

/// Result of the `(×, 1+ε)` eccentricity approximation (Theorem 4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApproxEccResult {
    /// `estimates[v]` with `ecc(v) <= estimates[v] <= (1+ε)·ecc(v)`.
    pub estimates: Vec<u32>,
    /// The dominating-set radius `k = ⌊ε·D₀/4⌋` used.
    pub k: u32,
    /// The size of the dominating set (the `|S|` of the S-SP call).
    pub dom_size: u64,
    /// Round/message statistics over all phases.
    pub stats: RunStats,
}

/// Result of an approximate scalar (diameter/radius) computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApproxScalarResult {
    /// The estimate (`OPT <= value <= (1+ε)·OPT`).
    pub value: u32,
    /// The dominating-set radius used.
    pub k: u32,
    /// The size of the dominating set.
    pub dom_size: u64,
    /// Round/message statistics.
    pub stats: RunStats,
}

fn validate_eps(eps: f64) -> Result<(), CoreError> {
    if eps <= 0.0 || !eps.is_finite() {
        return Err(CoreError::InvalidParameter(format!(
            "epsilon must be positive and finite, got {eps}"
        )));
    }
    Ok(())
}

/// Shared phases 1–4; returns per-node estimates plus bookkeeping, the
/// tree `T_1`, and the topology all phases ran on, so follow-up
/// aggregations need not rebuild either.
fn estimate_eccentricities(
    graph: &Graph,
    eps: f64,
    obs: Obs<'_>,
) -> Result<(ApproxEccResult, TreeKnowledge, Topology), CoreError> {
    validate_eps(eps)?;
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let topology = graph.to_topology();
    // Phase 1: T_1 and D0 = 2·ecc(1).
    let t1 = bfs::run_on_obs(&topology, 0, obs)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    let depths: Vec<u64> = t1.dist.iter().map(|&d| u64::from(d)).collect();
    let agg = aggregate::run_on_obs(&topology, &t1.tree, &depths, AggOp::Max, obs)?;
    let d0 = 2 * agg.value as u32;
    let mut stats = t1.stats;
    stats.absorb_sequential(&agg.stats);
    // Phase 2: k-dominating set.
    let k = (eps * f64::from(d0) / 4.0).floor() as u32;
    let dom = dominating::run_on_obs(&topology, &t1.tree, k, obs)?;
    stats.absorb_sequential(&dom.stats);
    // Phase 3: DOM-SP.
    let sources = dom.member_ids();
    let sp = ssp::run_on_obs(&topology, &sources, obs)?;
    stats.absorb_sequential(&sp.stats);
    // Phase 4: local estimates.
    let estimates: Vec<u32> = (0..n)
        .map(|v| k + sp.dist[v].iter().copied().max().expect("nonempty DOM"))
        .collect();
    Ok((
        ApproxEccResult {
            estimates,
            k,
            dom_size: dom.size,
            stats,
        },
        t1.tree,
        topology,
    ))
}

/// Theorem 4: every node learns a `(×, 1+ε)` estimate of its own
/// eccentricity in `O(n/D + D)` rounds.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for non-positive `eps`.
/// * [`CoreError::EmptyGraph`] / [`CoreError::Disconnected`] on bad graphs.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_core::approx;
/// use dapsp_graph::{generators, reference};
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::double_broom(40, 16);
/// let r = approx::eccentricities(&g, 0.5)?;
/// let exact = reference::eccentricities(&g).unwrap();
/// for v in 0..40 {
///     assert!(exact[v] <= r.estimates[v]);
///     assert!(f64::from(r.estimates[v]) <= 1.5 * f64::from(exact[v]));
/// }
/// # Ok(())
/// # }
/// ```
pub fn eccentricities(graph: &Graph, eps: f64) -> Result<ApproxEccResult, CoreError> {
    estimate_eccentricities(graph, eps, Obs::none()).map(|(r, _, _)| r)
}

/// Like [`eccentricities`], streaming round/message/timing events of every
/// phase to `observer` — the phases report as `"bfs"`, `"agg:max"`,
/// `"dom:select"`, `"agg:sum"`, then the S-SP phases (`"bfs"`,
/// `"agg:max"`, `"ssp:growth"`), matching Theorem 4's pipeline structure.
///
/// # Errors
///
/// Same as [`eccentricities`].
pub fn eccentricities_observed(
    graph: &Graph,
    eps: f64,
    observer: &ObserverHandle,
) -> Result<ApproxEccResult, CoreError> {
    estimate_eccentricities(graph, eps, Obs::watching(observer)).map(|(r, _, _)| r)
}

/// Corollary 4: a `(×, 1+ε)` diameter estimate in `O(n/D + D)` rounds.
///
/// # Errors
///
/// Same as [`eccentricities`].
///
/// # Examples
///
/// ```
/// use dapsp_core::approx;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::double_broom(60, 20);
/// let r = approx::diameter(&g, 0.25)?;
/// assert!(r.value >= 20 && f64::from(r.value) <= 1.25 * 20.0);
/// # Ok(())
/// # }
/// ```
pub fn diameter(graph: &Graph, eps: f64) -> Result<ApproxScalarResult, CoreError> {
    let (ecc, t1, topology) = estimate_eccentricities(graph, eps, Obs::none())?;
    scalar_from_estimates(&topology, ecc, &t1, AggOp::Max)
}

/// Corollary 4: a `(×, 1+ε)` radius estimate in `O(n/D + D)` rounds.
///
/// # Errors
///
/// Same as [`eccentricities`].
pub fn radius(graph: &Graph, eps: f64) -> Result<ApproxScalarResult, CoreError> {
    let (ecc, t1, topology) = estimate_eccentricities(graph, eps, Obs::none())?;
    scalar_from_estimates(&topology, ecc, &t1, AggOp::Min)
}

fn scalar_from_estimates(
    topology: &Topology,
    ecc: ApproxEccResult,
    t1: &TreeKnowledge,
    op: AggOp,
) -> Result<ApproxScalarResult, CoreError> {
    // One more O(D) aggregation over the already-built T_1.
    let values: Vec<u64> = ecc.estimates.iter().map(|&e| u64::from(e)).collect();
    let agg = aggregate::run_on(topology, t1, &values, op)?;
    let mut stats = ecc.stats;
    stats.absorb_sequential(&agg.stats);
    Ok(ApproxScalarResult {
        value: agg.value as u32,
        k: ecc.k,
        dom_size: ecc.dom_size,
        stats,
    })
}

/// Corollary 4: an approximate center in `O(n/D + D)` rounds.
///
/// Guarantees: every true center vertex is included, and every included
/// vertex has `ecc(v) <= rad + 2k` where `k = ⌊ε·D₀/4⌋ <= ε·rad`, i.e. the
/// output is a `(+, 2k)`-approximation of the center in the sense of
/// Definition 5 (equivalently `(×, 1+2ε)` on the eccentricity threshold).
///
/// # Errors
///
/// Same as [`eccentricities`].
pub fn center(graph: &Graph, eps: f64) -> Result<MembershipResult, CoreError> {
    let (ecc, t1, topology) = estimate_eccentricities(graph, eps, Obs::none())?;
    let values: Vec<u64> = ecc.estimates.iter().map(|&e| u64::from(e)).collect();
    let min = aggregate::run_on(&topology, &t1, &values, AggOp::Min)?;
    let threshold = min.value as u32 + ecc.k;
    let members = ecc.estimates.iter().map(|&e| e <= threshold).collect();
    let mut stats = ecc.stats;
    stats.absorb_sequential(&min.stats);
    Ok(MembershipResult {
        members,
        threshold,
        stats,
    })
}

/// Corollary 4: approximate peripheral vertices in `O(n/D + D)` rounds.
///
/// Guarantees: every true peripheral vertex is included, and every included
/// vertex has `ecc(v) >= D - 2k`.
///
/// # Errors
///
/// Same as [`eccentricities`].
pub fn peripheral_vertices(graph: &Graph, eps: f64) -> Result<MembershipResult, CoreError> {
    let (ecc, t1, topology) = estimate_eccentricities(graph, eps, Obs::none())?;
    let values: Vec<u64> = ecc.estimates.iter().map(|&e| u64::from(e)).collect();
    let max = aggregate::run_on(&topology, &t1, &values, AggOp::Max)?;
    let threshold = (max.value as u32).saturating_sub(ecc.k);
    let members = ecc.estimates.iter().map(|&e| e >= threshold).collect();
    let mut stats = ecc.stats;
    stats.absorb_sequential(&max.stats);
    Ok(MembershipResult {
        members,
        threshold,
        stats,
    })
}

/// Remark 1: a `(×, 2)` estimate of the diameter — just `2·ecc(1)` — in
/// `O(D)` rounds.
///
/// # Errors
///
/// Same as [`eccentricities`], minus the parameter check.
pub fn diameter_times_two(graph: &Graph) -> Result<ApproxScalarResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let topology = graph.to_topology();
    let t1 = bfs::run_on(&topology, 0)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    let depths: Vec<u64> = t1.dist.iter().map(|&d| u64::from(d)).collect();
    let agg = aggregate::run_on(&topology, &t1.tree, &depths, AggOp::Max)?;
    let mut stats = t1.stats;
    stats.absorb_sequential(&agg.stats);
    Ok(ApproxScalarResult {
        value: 2 * agg.value as u32,
        k: 0,
        dom_size: 1,
        stats,
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the matrix notation
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    fn guarantee_holds(g: &Graph, eps: f64) {
        let r = eccentricities(g, eps).unwrap();
        let exact = reference::eccentricities(g).unwrap();
        for v in 0..g.num_nodes() {
            assert!(
                exact[v] <= r.estimates[v],
                "estimate below truth at {v}: {} < {}",
                r.estimates[v],
                exact[v]
            );
            assert!(
                f64::from(r.estimates[v]) <= (1.0 + eps) * f64::from(exact[v]) + 1e-9,
                "estimate too high at {v}: {} vs (1+{eps})·{}",
                r.estimates[v],
                exact[v]
            );
        }
    }

    #[test]
    fn eccentricity_guarantee_on_zoo() {
        for eps in [0.1, 0.5, 1.0] {
            guarantee_holds(&generators::path(30), eps);
            guarantee_holds(&generators::cycle(24), eps);
            guarantee_holds(&generators::double_broom(40, 12), eps);
            guarantee_holds(&generators::grid(5, 6), eps);
            guarantee_holds(&generators::erdos_renyi_connected(30, 0.12, 3), eps);
        }
    }

    #[test]
    fn diameter_and_radius_guarantees() {
        for g in [
            generators::path(40),
            generators::double_broom(50, 20),
            generators::cycle(30),
        ] {
            let d = reference::diameter(&g).unwrap();
            let rad = reference::radius(&g).unwrap();
            for eps in [0.2, 0.7] {
                let rd = diameter(&g, eps).unwrap();
                assert!(rd.value >= d && f64::from(rd.value) <= (1.0 + eps) * f64::from(d) + 1e-9);
                let rr = radius(&g, eps).unwrap();
                assert!(
                    rr.value >= rad && f64::from(rr.value) <= (1.0 + eps) * f64::from(rad) + 1e-9
                );
            }
        }
    }

    #[test]
    fn center_includes_true_center_and_stays_close() {
        for g in [
            generators::path(25),
            generators::double_broom(30, 10),
            generators::grid(4, 6),
        ] {
            let r = center(&g, 0.5).unwrap();
            let truth = reference::center(&g).unwrap();
            let exact = reference::eccentricities(&g).unwrap();
            let rad = reference::radius(&g).unwrap();
            for &c in &truth {
                assert!(r.members[c as usize], "true center {c} missing");
            }
            let ecc_approx = eccentricities(&g, 0.5).unwrap();
            for (v, &m) in r.members.iter().enumerate() {
                if m {
                    assert!(
                        exact[v] <= rad + 2 * ecc_approx.k,
                        "spurious member {v}: ecc {} rad {rad} k {}",
                        exact[v],
                        ecc_approx.k
                    );
                }
            }
        }
    }

    #[test]
    fn peripheral_includes_true_peripherals() {
        for g in [generators::path(25), generators::double_broom(30, 10)] {
            let r = peripheral_vertices(&g, 0.5).unwrap();
            let truth = reference::peripheral_vertices(&g).unwrap();
            for &p in &truth {
                assert!(r.members[p as usize], "true peripheral {p} missing");
            }
        }
    }

    #[test]
    fn speedup_over_exact_on_large_diameter_graphs() {
        // Theorem 4's point: O(n/D + D) beats O(n) when n/D is large and
        // D is big enough that the k-dominating set is small.
        let g = generators::double_broom(400, 40);
        let approx = diameter(&g, 0.5).unwrap();
        let exact = crate::metrics::diameter(&g).unwrap();
        assert!(
            approx.stats.rounds < exact.stats.rounds,
            "approx {} !< exact {}",
            approx.stats.rounds,
            exact.stats.rounds
        );
        assert_eq!(exact.value, 40);
    }

    #[test]
    fn tiny_eps_degrades_to_exact() {
        let g = generators::grid(4, 4);
        let r = eccentricities(&g, 1e-6).unwrap();
        assert_eq!(r.k, 0);
        assert_eq!(
            Some(r.estimates),
            reference::eccentricities(&g),
            "k = 0 means DOM = V and exact answers"
        );
    }

    #[test]
    fn times_two_estimate() {
        let g = generators::cycle(20);
        let r = diameter_times_two(&g).unwrap();
        let d = reference::diameter(&g).unwrap();
        assert!(r.value >= d && r.value <= 2 * d);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let g = generators::path(4);
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                eccentricities(&g, eps).unwrap_err(),
                CoreError::InvalidParameter(_)
            ));
        }
    }

    #[test]
    fn single_node() {
        let g = Graph::builder(1).build();
        let r = eccentricities(&g, 0.5).unwrap();
        assert_eq!(r.estimates, vec![0]);
    }

    use dapsp_graph::Graph;
}

/// Remark 1: a `(×, 2)`-style estimate of every node's eccentricity from a
/// single BFS, in `O(D)` rounds.
///
/// Node `v` estimates `ẽcc(v) := max(d(v, 1), ecc(1))`; both quantities
/// come out of one BFS from node 1 plus one aggregation. The guarantee is
/// two-sided: `ecc(v)/2 <= ẽcc(v) <= 2·ecc(v)` (by Fact 1 and the triangle
/// inequality), which is the factor-2 knowledge Remark 1 refers to.
///
/// # Errors
///
/// Same as [`diameter_times_two`].
pub fn eccentricities_times_two(graph: &Graph) -> Result<ApproxEccResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let topology = graph.to_topology();
    let t1 = bfs::run_on(&topology, 0)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    let depths: Vec<u64> = t1.dist.iter().map(|&d| u64::from(d)).collect();
    let agg = aggregate::run_on(&topology, &t1.tree, &depths, AggOp::Max)?;
    let ecc0 = agg.value as u32;
    let estimates = t1.dist.iter().map(|&d| d.max(ecc0)).collect();
    let mut stats = t1.stats;
    stats.absorb_sequential(&agg.stats);
    Ok(ApproxEccResult {
        estimates,
        k: 0,
        dom_size: 1,
        stats,
    })
}

/// Remark 1: a `(×, 2)` radius estimate — just `ecc(1)` — in `O(D)`
/// rounds (`rad <= ecc(1) <= 2·rad`).
///
/// # Errors
///
/// Same as [`diameter_times_two`].
pub fn radius_times_two(graph: &Graph) -> Result<ApproxScalarResult, CoreError> {
    let r = diameter_times_two(graph)?;
    Ok(ApproxScalarResult {
        value: r.value / 2, // diameter_times_two returns 2·ecc(1)
        ..r
    })
}

/// Remark 2: the trivial `(×, 2)`-approximation of the center — the whole
/// vertex set — in **zero** rounds: `center ⊆ V ⊆ N_rad(center)` because
/// every node is within `rad <= ecc(c)` of any center vertex `c`.
///
/// # Errors
///
/// [`CoreError::EmptyGraph`] on an empty graph.
pub fn center_times_two(graph: &Graph) -> Result<MembershipResult, CoreError> {
    trivial_membership(graph)
}

/// Remark 2: the trivial `(×, 2)`-approximation of the peripheral
/// vertices — the whole vertex set — in **zero** rounds.
///
/// # Errors
///
/// [`CoreError::EmptyGraph`] on an empty graph.
pub fn peripheral_times_two(graph: &Graph) -> Result<MembershipResult, CoreError> {
    trivial_membership(graph)
}

fn trivial_membership(graph: &Graph) -> Result<MembershipResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    Ok(MembershipResult {
        members: vec![true; n],
        threshold: 0,
        stats: RunStats::default(),
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod remark_tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    #[test]
    fn times_two_eccentricities_are_two_sided() {
        for g in [
            generators::path(20),
            generators::cycle(14),
            generators::double_broom(25, 9),
            generators::erdos_renyi_connected(22, 0.15, 8),
        ] {
            let r = eccentricities_times_two(&g).unwrap();
            let exact = reference::eccentricities(&g).unwrap();
            for v in 0..g.num_nodes() {
                assert!(2 * r.estimates[v] >= exact[v], "lower side at {v}");
                assert!(r.estimates[v] <= 2 * exact[v], "upper side at {v}");
            }
            // O(D) rounds, far below O(n) for compact graphs.
            assert!(r.stats.rounds <= 4 * u64::from(exact[0]) + 8);
        }
    }

    #[test]
    fn times_two_radius_brackets() {
        for g in [generators::path(21), generators::star(11)] {
            let rad = reference::radius(&g).unwrap();
            let r = radius_times_two(&g).unwrap();
            assert!(r.value >= rad && r.value <= 2 * rad);
        }
    }

    #[test]
    fn remark_2_sets_are_free_supersets() {
        let g = generators::grid(4, 5);
        let c = center_times_two(&g).unwrap();
        assert_eq!(c.stats.rounds, 0);
        for v in reference::center(&g).unwrap() {
            assert!(c.members[v as usize]);
        }
        let p = peripheral_times_two(&g).unwrap();
        assert_eq!(p.stats.rounds, 0);
        for v in reference::peripheral_vertices(&g).unwrap() {
            assert!(p.members[v as usize]);
        }
    }
}

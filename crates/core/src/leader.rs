//! Minimum-id leader election by flooding — the primitive behind the
//! paper's "we assume there is a node with ID 1" (§2).
//!
//! The paper notes that finding the node with the smallest id and renaming
//! it to 1 "would not affect the asymptotic runtime". This module makes
//! that concrete: every node floods the smallest id it has seen; after
//! `O(D)` rounds all nodes agree on the global minimum and exactly one
//! node knows it is the leader. All other algorithms in this crate root
//! their trees at node 0 — precisely the node this election would select
//! under the crate's id scheme.

use dapsp_congest::{
    bits_for_id, Config, Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port, RunStats,
};
use dapsp_graph::Graph;

use crate::error::CoreError;
use crate::runner::run_algorithm;

#[derive(Clone, Debug)]
struct Claim {
    id: u32,
    n: u32,
}

impl Message for Claim {
    fn bit_size(&self) -> u32 {
        bits_for_id(self.n as usize)
    }
}

struct ElectNode {
    n: u32,
    best: u32,
}

impl NodeAlgorithm for ElectNode {
    type Message = Claim;
    type Output = u32;

    fn on_start(&mut self, ctx: &NodeContext<'_>, out: &mut Outbox<Claim>) {
        self.best = ctx.node_id();
        out.send_to_all(
            0..ctx.degree() as Port,
            Claim {
                id: self.best,
                n: self.n,
            },
        );
    }

    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Claim>, out: &mut Outbox<Claim>) {
        let mut improved_from: Option<Port> = None;
        for (port, msg) in inbox.iter() {
            if msg.id < self.best {
                self.best = msg.id;
                improved_from = Some(port);
            }
        }
        if let Some(from) = improved_from {
            for p in 0..ctx.degree() as Port {
                if p != from {
                    out.send(
                        p,
                        Claim {
                            id: self.best,
                            n: self.n,
                        },
                    );
                }
            }
        }
    }

    fn into_output(self, _ctx: &NodeContext<'_>) -> u32 {
        self.best
    }
}

/// The outcome of a leader election.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaderResult {
    /// The elected leader (the globally smallest id).
    pub leader: u32,
    /// Round/message statistics (`O(D)` rounds, `O(D·m)` messages
    /// worst-case).
    pub stats: RunStats,
}

/// Elects the minimum-id node by flooding, in `O(D)` rounds.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] on an empty graph.
/// * [`CoreError::Disconnected`] if nodes disagree at quiescence (which on
///   a valid topology only happens when the graph is disconnected).
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_core::leader;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::cycle(9);
/// let r = leader::elect(&g)?;
/// assert_eq!(r.leader, 0);
/// # Ok(())
/// # }
/// ```
pub fn elect(graph: &Graph) -> Result<LeaderResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let report = run_algorithm(graph, Config::for_n(n), |ctx| ElectNode {
        n: n as u32,
        best: ctx.node_id(),
    })?;
    let leader = report.outputs[0];
    if report.outputs.iter().any(|&b| b != leader) {
        return Err(CoreError::Disconnected);
    }
    Ok(LeaderResult {
        leader,
        stats: report.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::generators;

    #[test]
    fn elects_minimum_id_everywhere() {
        for g in [
            generators::path(12),
            generators::cycle(10),
            generators::star(9),
            generators::grid(4, 4),
            generators::erdos_renyi_connected(25, 0.15, 6),
        ] {
            assert_eq!(elect(&g).unwrap().leader, 0);
        }
    }

    #[test]
    fn rounds_are_linear_in_diameter() {
        let g = generators::path(50);
        let r = elect(&g).unwrap();
        // Id 0 sits at one end; its claim needs 49 hops, plus quiescence.
        assert!(r.stats.rounds <= 49 + 3, "rounds={}", r.stats.rounds);
        let g = generators::star(50);
        let r = elect(&g).unwrap();
        assert!(r.stats.rounds <= 4, "rounds={}", r.stats.rounds);
    }

    #[test]
    fn detects_disconnection() {
        let mut b = dapsp_graph::Graph::builder(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        assert_eq!(elect(&b.build()).unwrap_err(), CoreError::Disconnected);
    }

    #[test]
    fn single_node_is_its_own_leader() {
        let g = dapsp_graph::Graph::builder(1).build();
        assert_eq!(elect(&g).unwrap().leader, 0);
    }
}

#[cfg(test)]
mod width_tests {
    use super::*;

    /// A claim is one fixed-width node id — always within the budget.
    #[test]
    fn claim_width_fits_the_budget() {
        for n in [2usize, 100, 1 << 16] {
            let budget = Config::for_n(n).message_budget.unwrap();
            let claim = Claim {
                id: n as u32 - 1,
                n: n as u32,
            };
            assert!(claim.bit_size() <= budget, "n={n}");
        }
    }
}

//! Convenience glue between [`Graph`]s and the simulator.

use dapsp_congest::{Config, NodeAlgorithm, NodeContext, Report, Simulator, Topology};
use dapsp_graph::Graph;

use crate::error::CoreError;

/// Runs `init`-constructed node algorithms over `graph` to quiescence and
/// returns the simulator's [`Report`] (per-node outputs plus round/bit
/// statistics).
///
/// This is the entry point used by every algorithm in this crate; it is
/// public so downstream users can run custom CONGEST algorithms over a
/// [`Graph`] without hand-building a topology.
///
/// # Errors
///
/// Propagates simulator failures ([`CoreError::Sim`]) and rejects empty
/// graphs.
///
/// # Examples
///
/// ```
/// use dapsp_congest::{Config, Inbox, Message, NodeAlgorithm, NodeContext, Outbox};
/// use dapsp_core::run_algorithm;
/// use dapsp_graph::generators;
///
/// #[derive(Clone, Debug)]
/// struct Noop;
/// impl Message for Noop { fn bit_size(&self) -> u32 { 1 } }
///
/// struct Idle;
/// impl NodeAlgorithm for Idle {
///     type Message = Noop;
///     type Output = u32;
///     fn on_round(&mut self, _: &NodeContext<'_>, _: &Inbox<Noop>, _: &mut Outbox<Noop>) {}
///     fn into_output(self, ctx: &NodeContext<'_>) -> u32 { ctx.node_id() }
/// }
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::path(3);
/// let report = run_algorithm(&g, Config::for_n(3), |_| Idle)?;
/// assert_eq!(report.outputs, vec![0, 1, 2]);
/// # Ok(())
/// # }
/// ```
pub fn run_algorithm<A, F>(
    graph: &Graph,
    config: Config,
    init: F,
) -> Result<Report<A::Output>, CoreError>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    F: FnMut(&NodeContext<'_>) -> A,
{
    if graph.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let topology = graph.to_topology();
    run_algorithm_on(&topology, config, init)
}

/// Like [`run_algorithm`], but over a prebuilt [`Topology`].
///
/// Multi-phase algorithms (APSP = BFS + pebble walk, the approximations =
/// dominating set + S-SP, …) run several simulations over the *same* graph;
/// building the topology once and passing it here avoids re-validating and
/// re-flattening the adjacency lists for every phase.
///
/// # Errors
///
/// Propagates simulator failures ([`CoreError::Sim`]) and rejects empty
/// topologies.
pub fn run_algorithm_on<A, F>(
    topology: &Topology,
    config: Config,
    init: F,
) -> Result<Report<A::Output>, CoreError>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    F: FnMut(&NodeContext<'_>) -> A,
{
    if topology.num_nodes() == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let sim = Simulator::new(topology, config, init);
    sim.run().map_err(CoreError::from)
}

/// Folds a [`Report`]'s per-node outputs into one host-side accumulator:
/// `fold(&mut acc, node_id, output)` runs once per node, in node-id order.
///
/// Every algorithm module ends with this step — turning `n` per-node
/// outputs into a result struct (a distance matrix, a tree, a candidate
/// minimum). Naming the step keeps the per-module code to just the
/// folding closure.
pub fn fold_outputs<O, S, F>(outputs: Vec<O>, seed: S, mut fold: F) -> S
where
    F: FnMut(&mut S, u32, O),
{
    let mut acc = seed;
    for (v, out) in outputs.into_iter().enumerate() {
        fold(&mut acc, v as u32, out);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_congest::{Inbox, Message, Outbox};
    use dapsp_graph::Graph;

    #[derive(Clone, Debug)]
    struct Noop;
    impl Message for Noop {
        fn bit_size(&self) -> u32 {
            1
        }
    }
    struct Idle;
    impl NodeAlgorithm for Idle {
        type Message = Noop;
        type Output = ();
        fn on_round(&mut self, _: &NodeContext<'_>, _: &Inbox<Noop>, _: &mut Outbox<Noop>) {}
        fn into_output(self, _: &NodeContext<'_>) {}
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = Graph::builder(0).build();
        let err = run_algorithm(&g, Config::for_n(1), |_| Idle).unwrap_err();
        assert_eq!(err, CoreError::EmptyGraph);
    }

    #[test]
    fn fold_outputs_visits_every_node_in_order() {
        let visited = fold_outputs(vec![10u32, 20, 30], Vec::new(), |acc, v, out| {
            acc.push((v, out));
        });
        assert_eq!(visited, vec![(0, 10), (1, 20), (2, 30)]);
    }
}

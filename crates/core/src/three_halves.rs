//! The `(×, 3/2)` diameter approximation of Corollary 1.
//!
//! Corollary 1 combines two algorithms and takes whichever is faster for
//! the instance at hand:
//!
//! * the `(×, 1+ε)` approximation of Corollary 4 with `ε = 1/2`, in
//!   `O(n/D + D)` rounds — wins when `D` is large;
//! * an Aingworth-style sampled estimator in the spirit of the independent
//!   `O(D·√n)` algorithm of Peleg, Roditty & Tal (ICALP 2012) — wins when
//!   `D` is small. (The verbatim ICALP algorithm is not in this paper's
//!   text; this module implements the standard distributed adaptation: see
//!   DESIGN.md. Its estimate `ℓ` satisfies `⌊2D/3⌋ ≤ ℓ ≤ D` w.h.p., so
//!   `⌈3ℓ/2⌉ ∈ [D, 3D/2]` up to rounding.)
//!
//! Since `min{D·√n, n/D + D} = O(n^{3/4} + D)`, the combination runs in
//! `O(n^{3/4} + D)` rounds.
//!
//! ## The sampled estimator
//!
//! 1. sample `S` with per-node probability `√(log n / n)` (plus node 0);
//! 2. run `S`-SP; aggregate `ℓ₁ = max_{u∈S} ecc(u)`;
//! 3. find the node `w` farthest from `S` (argmax aggregation);
//! 4. probe `N₁(w)` (capped at the `√(n·log n)` degree threshold) with a
//!    second S-SP; aggregate `ℓ₂` the same way;
//! 5. return `ℓ = max(ℓ₁, ℓ₂)`.

use dapsp_congest::RunStats;
use dapsp_graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::aggregate::{self, AggOp};
use crate::approx;
use crate::bfs;
use crate::error::CoreError;
use crate::ssp;
use crate::two_vs_four::degree_threshold;

/// Which branch Corollary 1 chose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Branch {
    /// The sampled `Õ(D·√n)` estimator.
    Sampled,
    /// The `O(n/D + D)` dominating-set approximation with `ε = 1/2`.
    DominatingSet,
}

/// Result of the `(×, 3/2)` diameter approximation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreeHalvesResult {
    /// The diameter estimate, in `[D, ⌈3D/2⌉]` (w.h.p. for the sampled
    /// branch).
    pub estimate: u32,
    /// The branch that produced it.
    pub branch: Branch,
    /// Round/message statistics.
    pub stats: RunStats,
}

/// The sampled estimator on its own: returns `ℓ` with `⌊2D/3⌋ ≤ ℓ ≤ D`
/// (w.h.p.) in `Õ(D·√n)` rounds.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] / [`CoreError::Disconnected`] on bad graphs.
/// * [`CoreError::Sim`] on simulator failures.
pub fn sampled_lower_estimate(graph: &Graph, seed: u64) -> Result<(u32, RunStats), CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let topology = graph.to_topology();
    let t1 = bfs::run_on(&topology, 0)?;
    if !t1.reached_all() {
        return Err(CoreError::Disconnected);
    }
    let mut stats = t1.stats;
    // 1. Sample.
    let p = ((n.max(2) as f64).log2() / n as f64).sqrt().min(1.0);
    let sample: Vec<u32> = (0..n as u32)
        .filter(|&v| v == 0 || ChaCha8Rng::seed_from_u64(seed ^ (u64::from(v) << 20)).gen_bool(p))
        .collect();
    // 2. S-SP from the sample; every node's max distance to the sample is
    //    exactly max_{u∈S} at that node, so one max-aggregation yields
    //    max_{u∈S} ecc(u).
    let sp = ssp::run_on(&topology, &sample)?;
    stats.absorb_sequential(&sp.stats);
    let per_node_max: Vec<u64> = (0..n)
        .map(|v| u64::from(*sp.dist[v].iter().max().expect("nonempty sample")))
        .collect();
    let l1 = aggregate::run_on(&topology, &t1.tree, &per_node_max, AggOp::Max)?;
    stats.absorb_sequential(&l1.stats);
    // 3. The node farthest from the sample (ties broken toward larger id),
    //    via an encoded (distance, id) max-aggregation.
    let encoded: Vec<u64> = (0..n)
        .map(|v| {
            let dmin = u64::from(*sp.dist[v].iter().min().expect("nonempty sample"));
            dmin * n as u64 + v as u64
        })
        .collect();
    let far = aggregate::run_on(&topology, &t1.tree, &encoded, AggOp::Max)?;
    stats.absorb_sequential(&far.stats);
    let w = (far.value % n as u64) as u32;
    // 4. Probe w and its neighborhood (capped to the usual √(n log n)).
    let mut probes = vec![w];
    probes.extend(graph.neighbors(w).iter().copied().take(degree_threshold(n)));
    probes.sort_unstable();
    probes.dedup();
    let sp2 = ssp::run_on(&topology, &probes)?;
    stats.absorb_sequential(&sp2.stats);
    let per_node_max2: Vec<u64> = (0..n)
        .map(|v| u64::from(*sp2.dist[v].iter().max().expect("nonempty probes")))
        .collect();
    let l2 = aggregate::run_on(&topology, &t1.tree, &per_node_max2, AggOp::Max)?;
    stats.absorb_sequential(&l2.stats);
    Ok((l1.value.max(l2.value) as u32, stats))
}

/// Corollary 1: a `(×, 3/2)` diameter estimate in `O(n^{3/4} + D)` rounds.
///
/// The branch is picked from the `O(D)`-round `(×, 2)` bound `D₀`:
/// the sampled branch costs about `D·√n` rounds and the dominating-set
/// branch about `n/D + D`, so the sampled branch runs iff
/// `D₀·√n ≤ n/D₀ + D₀`.
///
/// # Errors
///
/// Same as [`sampled_lower_estimate`].
///
/// # Examples
///
/// ```
/// use dapsp_core::three_halves;
/// use dapsp_graph::generators;
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::double_broom(50, 16); // D = 16
/// let r = three_halves::run(&g, 3)?;
/// assert!(r.estimate >= 16 && r.estimate <= 24);
/// # Ok(())
/// # }
/// ```
pub fn run(graph: &Graph, seed: u64) -> Result<ThreeHalvesResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    // O(D): the (×,2) estimate decides the branch.
    let rough = approx::diameter_times_two(graph)?;
    let mut stats = rough.stats;
    let d0 = f64::from(rough.value.max(1));
    let nf = n as f64;
    if d0 * nf.sqrt() <= nf / d0 + d0 {
        let (l, s) = sampled_lower_estimate(graph, seed)?;
        stats.absorb_sequential(&s);
        Ok(ThreeHalvesResult {
            // ⌊2D/3⌋ <= l <= D, so ⌊3l/2⌋ + 2 lands in [D, 3D/2 + 2]
            // (the +2 absorbs both floors).
            estimate: (3 * l) / 2 + 2,
            branch: Branch::Sampled,
            stats,
        })
    } else {
        let approx = approx::diameter(graph, 0.5)?;
        stats.absorb_sequential(&approx.stats);
        Ok(ThreeHalvesResult {
            estimate: approx.value,
            branch: Branch::DominatingSet,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    fn check(g: &Graph, seed: u64) -> ThreeHalvesResult {
        let r = run(g, seed).unwrap();
        let d = reference::diameter(g).unwrap();
        assert!(r.estimate >= d, "estimate {} below D={d}", r.estimate);
        assert!(
            f64::from(r.estimate) <= 1.5 * f64::from(d) + 2.0,
            "estimate {} above 1.5·{d}",
            r.estimate
        );
        r
    }

    #[test]
    fn small_diameter_uses_sampled_branch() {
        // star(300): D = 2, so D0·√n = 4·17.3 << n/D0 + D0 = 152.
        let g = generators::star(300);
        let r = check(&g, 5);
        assert_eq!(r.branch, Branch::Sampled);
    }

    #[test]
    fn large_diameter_uses_dominating_branch() {
        let g = generators::double_broom(80, 40);
        let r = check(&g, 5);
        assert_eq!(r.branch, Branch::DominatingSet);
    }

    #[test]
    fn estimate_within_bounds_on_zoo() {
        check(&generators::grid(5, 5), 2);
        check(&generators::cycle(20), 2);
        check(&generators::star(12), 2);
        check(&generators::hypercube(4), 2);
        for seed in 0..4 {
            check(&generators::erdos_renyi_connected(30, 0.15, seed), seed);
        }
    }

    #[test]
    fn sampled_estimator_is_a_lower_bound_side_estimate() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_connected(40, 0.1, seed);
            let d = reference::diameter(&g).unwrap();
            let (l, _) = sampled_lower_estimate(&g, seed).unwrap();
            assert!(l <= d, "l={l} exceeds D={d}");
            assert!(3 * l + 2 >= 2 * d, "l={l} below 2D/3 (D={d})");
        }
    }

    use dapsp_graph::Graph;
}

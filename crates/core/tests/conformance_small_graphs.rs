//! Exhaustive small-graph conformance: every distributed algorithm against
//! its sequential oracle on *every* connected graph with at most
//! [`MAX_ENUMERATED_NODES`](enumerate::MAX_ENUMERATED_NODES) nodes.
//!
//! Randomized and zoo tests sample the graph space; this suite covers it.
//! All 996 isomorphism classes of connected graphs on 1–7 nodes (OEIS
//! A001349) pass through APSP, S-SP, girth, and the eccentricity /
//! diameter / radius pipeline, and every answer must match the sequential
//! reference exactly — not approximately, not probabilistically.

use dapsp_core::{apsp, girth, ssp, summary};
use dapsp_graph::enumerate::{self, MAX_ENUMERATED_NODES};
use dapsp_graph::{reference, Graph, INFINITY};

/// Every enumerated connected graph, tagged with its size.
fn all_graphs() -> impl Iterator<Item = (usize, Graph)> {
    (1..=MAX_ENUMERATED_NODES).flat_map(|n| {
        enumerate::connected_graphs(n)
            .into_iter()
            .map(move |g| (n, g))
    })
}

#[test]
fn apsp_matches_oracle_on_every_small_connected_graph() {
    for (n, g) in all_graphs() {
        let r = apsp::run(&g).unwrap_or_else(|e| panic!("apsp failed on n={n} {g:?}: {e}"));
        assert_eq!(r.distances, reference::apsp(&g), "distances wrong on {g:?}");
        // Next hops must step exactly one unit closer to each root.
        for v in 0..n as u32 {
            for root in 0..n as u32 {
                match r.next_hop[v as usize][root as usize] {
                    None => assert_eq!(v, root, "only the root lacks a next hop: {g:?}"),
                    Some(h) => {
                        assert!(g.has_edge(v, h), "next hop off-graph on {g:?}");
                        assert_eq!(
                            r.distances.get(h, root).unwrap() + 1,
                            r.distances.get(v, root).unwrap(),
                            "next hop not on a shortest path on {g:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn ssp_matches_oracle_on_every_small_connected_graph() {
    for (n, g) in all_graphs() {
        // Every other node as a source: exercises contention without
        // degenerating into the APSP case (except at n = 1, 2).
        let sources: Vec<u32> = (0..n as u32).step_by(2).collect();
        let r = ssp::run(&g, &sources).unwrap_or_else(|e| panic!("ssp failed on n={n} {g:?}: {e}"));
        let oracle = reference::s_shortest_paths(&g, &sources);
        for (i, dists) in oracle.iter().enumerate() {
            for (v, &d) in dists.iter().enumerate() {
                assert_eq!(
                    r.dist[v][i], d,
                    "d({v}, source {}) wrong on {g:?}",
                    sources[i]
                );
            }
        }
    }
}

#[test]
fn girth_matches_oracle_on_every_small_connected_graph() {
    for (_, g) in all_graphs() {
        let r = girth::run(&g).unwrap_or_else(|e| panic!("girth failed on {g:?}: {e}"));
        assert_eq!(r.girth, reference::girth(&g), "girth wrong on {g:?}");
    }
}

#[test]
fn metrics_match_oracles_on_every_small_connected_graph() {
    for (_, g) in all_graphs() {
        let s = summary::analyze(&g).unwrap_or_else(|e| panic!("summary failed on {g:?}: {e}"));
        assert_eq!(
            Some(s.eccentricities.clone()),
            reference::eccentricities(&g),
            "eccentricities wrong on {g:?}"
        );
        assert_eq!(
            Some(s.diameter),
            reference::diameter(&g),
            "diameter wrong on {g:?}"
        );
        assert_eq!(
            Some(s.radius),
            reference::radius(&g),
            "radius wrong on {g:?}"
        );
        assert_eq!(
            Some(s.center_ids()),
            reference::center(&g),
            "center wrong on {g:?}"
        );
        assert_eq!(
            Some(s.peripheral_ids()),
            reference::peripheral_vertices(&g),
            "peripheral vertices wrong on {g:?}"
        );
        assert_eq!(
            s.girth,
            reference::girth(&g),
            "summary girth wrong on {g:?}"
        );
    }
}

#[test]
fn local_girth_candidates_never_undershoot_on_small_graphs() {
    // Lemma 7's soundness half, exhaustively: no node ever claims a cycle
    // shorter than the girth, and on non-trees some node claims it exactly.
    for (_, g) in all_graphs() {
        let r = apsp::run(&g).unwrap();
        let oracle = reference::girth(&g);
        let min = r.local_girth_candidates.iter().copied().min().unwrap();
        match oracle {
            None => assert_eq!(min, INFINITY, "cycle claimed on a tree: {g:?}"),
            Some(girth) => assert_eq!(min, girth, "girth candidate wrong on {g:?}"),
        }
    }
}

//! Exhaustive small-graph conformance: every distributed algorithm against
//! its sequential oracle on *every* connected graph with at most
//! [`MAX_ENUMERATED_NODES`](enumerate::MAX_ENUMERATED_NODES) nodes.
//!
//! Randomized and zoo tests sample the graph space; this suite covers it.
//! All 996 isomorphism classes of connected graphs on 1–7 nodes (OEIS
//! A001349) pass through APSP, S-SP, girth, and the eccentricity /
//! diameter / radius pipeline, and every answer must match the sequential
//! reference exactly — not approximately, not probabilistically.

use dapsp_congest::{ExecutorKind, TopologyPlan};
use dapsp_core::{apsp, bfs, churned_graph, girth, ssp, summary, Obs};
use dapsp_graph::enumerate::{self, MAX_ENUMERATED_NODES};
use dapsp_graph::{reference, Graph, INFINITY};

/// Every enumerated connected graph, tagged with its size.
fn all_graphs() -> impl Iterator<Item = (usize, Graph)> {
    (1..=MAX_ENUMERATED_NODES).flat_map(|n| {
        enumerate::connected_graphs(n)
            .into_iter()
            .map(move |g| (n, g))
    })
}

#[test]
fn apsp_matches_oracle_on_every_small_connected_graph() {
    for (n, g) in all_graphs() {
        let r = apsp::run(&g).unwrap_or_else(|e| panic!("apsp failed on n={n} {g:?}: {e}"));
        assert_eq!(r.distances, reference::apsp(&g), "distances wrong on {g:?}");
        // Next hops must step exactly one unit closer to each root.
        for v in 0..n as u32 {
            for root in 0..n as u32 {
                match r.next_hop[v as usize][root as usize] {
                    None => assert_eq!(v, root, "only the root lacks a next hop: {g:?}"),
                    Some(h) => {
                        assert!(g.has_edge(v, h), "next hop off-graph on {g:?}");
                        assert_eq!(
                            r.distances.get(h, root).unwrap() + 1,
                            r.distances.get(v, root).unwrap(),
                            "next hop not on a shortest path on {g:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn ssp_matches_oracle_on_every_small_connected_graph() {
    for (n, g) in all_graphs() {
        // Every other node as a source: exercises contention without
        // degenerating into the APSP case (except at n = 1, 2).
        let sources: Vec<u32> = (0..n as u32).step_by(2).collect();
        let r = ssp::run(&g, &sources).unwrap_or_else(|e| panic!("ssp failed on n={n} {g:?}: {e}"));
        let oracle = reference::s_shortest_paths(&g, &sources);
        for (i, dists) in oracle.iter().enumerate() {
            for (v, &d) in dists.iter().enumerate() {
                assert_eq!(
                    r.dist[v][i], d,
                    "d({v}, source {}) wrong on {g:?}",
                    sources[i]
                );
            }
        }
    }
}

#[test]
fn girth_matches_oracle_on_every_small_connected_graph() {
    for (_, g) in all_graphs() {
        let r = girth::run(&g).unwrap_or_else(|e| panic!("girth failed on {g:?}: {e}"));
        assert_eq!(r.girth, reference::girth(&g), "girth wrong on {g:?}");
    }
}

#[test]
fn metrics_match_oracles_on_every_small_connected_graph() {
    for (_, g) in all_graphs() {
        let s = summary::analyze(&g).unwrap_or_else(|e| panic!("summary failed on {g:?}: {e}"));
        assert_eq!(
            Some(s.eccentricities.clone()),
            reference::eccentricities(&g),
            "eccentricities wrong on {g:?}"
        );
        assert_eq!(
            Some(s.diameter),
            reference::diameter(&g),
            "diameter wrong on {g:?}"
        );
        assert_eq!(
            Some(s.radius),
            reference::radius(&g),
            "radius wrong on {g:?}"
        );
        assert_eq!(
            Some(s.center_ids()),
            reference::center(&g),
            "center wrong on {g:?}"
        );
        assert_eq!(
            Some(s.peripheral_ids()),
            reference::peripheral_vertices(&g),
            "peripheral vertices wrong on {g:?}"
        );
        assert_eq!(
            s.girth,
            reference::girth(&g),
            "summary girth wrong on {g:?}"
        );
    }
}

/// A deterministic pseudo-random pick keyed by the graph's index in the
/// enumeration — stable across runs without an RNG dependency.
fn pick(seed: usize, len: usize) -> usize {
    seed.wrapping_mul(2654435761) % len
}

/// The churn sweep: every connected graph on up to 6 nodes, a single-edge
/// delete and (where one exists) a single-edge insert applied mid-run.
/// The repaired BFS and APSP answers must equal the sequential oracles on
/// the mutated graph — even when the deletion disconnects it — and the
/// serial and work-stealing pool engines must agree bit for bit, stats
/// included.
#[test]
fn churned_runs_match_oracles_on_every_small_connected_graph() {
    let mut idx = 0usize;
    for (n, g) in all_graphs() {
        if n > 6 {
            break;
        }
        idx += 1;
        let edges: Vec<(u32, u32)> = g.edges().collect();
        if edges.is_empty() {
            continue;
        }
        let (ru, rv) = edges[pick(idx, edges.len())];
        let non_edges: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| (u + 1..n as u32).map(move |v| (u, v)))
            .filter(|&(u, v)| !g.has_edge(u, v))
            .collect();
        let mut plan = TopologyPlan::new().with_remove(2, ru, rv);
        if !non_edges.is_empty() {
            let (iu, iv) = non_edges[pick(idx + 1, non_edges.len())];
            plan = plan.with_insert(3, iu, iv);
        }
        let mutated = churned_graph(&g, &plan)
            .unwrap_or_else(|e| panic!("plan {plan:?} must apply to {g:?}: {e}"));

        // Repaired BFS from node 0 equals the oracle on the mutated graph.
        let b = bfs::run_churned(&g, 0, &plan)
            .unwrap_or_else(|e| panic!("churned bfs failed on {g:?} with {plan:?}: {e}"));
        let oracle = reference::bfs(&mutated, 0);
        for (v, &want) in oracle.iter().enumerate() {
            assert_eq!(
                b.dist[v][0], want,
                "bfs d({v}, 0) wrong on {g:?} with {plan:?}"
            );
        }

        // Repaired APSP equals the oracle, on both engines, bit for bit.
        let serial = apsp::run_churned(&g, &plan)
            .unwrap_or_else(|e| panic!("churned apsp failed on {g:?} with {plan:?}: {e}"));
        let pool = apsp::run_churned_on(
            &g.to_topology(),
            &plan,
            Obs::none().with_executor(ExecutorKind::Pool { workers: 2 }),
        )
        .unwrap_or_else(|e| panic!("pooled churned apsp failed on {g:?} with {plan:?}: {e}"));
        let oracle = reference::apsp(&mutated);
        for v in 0..n as u32 {
            for root in 0..n as u32 {
                assert_eq!(
                    serial.dist_to(v, root),
                    oracle.get(v, root).or(Some(INFINITY)),
                    "apsp d({v}, {root}) wrong on {g:?} with {plan:?}"
                );
            }
        }
        assert_eq!(serial.dist, pool.dist, "engine distance mismatch on {g:?}");
        assert_eq!(
            serial.parent_port, pool.parent_port,
            "engine parent mismatch on {g:?}"
        );
        assert_eq!(
            serial.stats, pool.stats,
            "engine stats mismatch on {g:?} with {plan:?}"
        );
    }
    assert!(idx > 100, "sweep must actually cover the enumeration");
}

#[test]
fn local_girth_candidates_never_undershoot_on_small_graphs() {
    // Lemma 7's soundness half, exhaustively: no node ever claims a cycle
    // shorter than the girth, and on non-trees some node claims it exactly.
    for (_, g) in all_graphs() {
        let r = apsp::run(&g).unwrap();
        let oracle = reference::girth(&g);
        let min = r.local_girth_candidates.iter().copied().min().unwrap();
        match oracle {
            None => assert_eq!(min, INFINITY, "cycle claimed on a tree: {g:?}"),
            Some(girth) => assert_eq!(min, girth, "girth candidate wrong on {g:?}"),
        }
    }
}

//! End-to-end executor parity at the pipeline layer: running the paper's
//! composite algorithms (pebble APSP, S-SP) with `Obs::with_executor`
//! selecting the worker-pool engine must reproduce the serial results —
//! distances, next hops, statistics, and the full per-phase metric stream
//! — bit for bit. This pins the plumbing from `crates/core` down through
//! `Config::with_executor` into the pool's staged commit.

use dapsp_congest::{ExecutorKind, MetricsRecorder, SharedObserver};
use dapsp_core::{apsp, ssp, Obs};
use dapsp_graph::generators;

#[test]
fn apsp_pipeline_matches_across_executors() {
    let g = generators::watts_strogatz(24, 3, 0.1, 12);
    let topo = g.to_topology();
    let serial = apsp::run_on_obs(&topo, Obs::none()).expect("serial apsp");
    for workers in [2, 4] {
        let pooled = apsp::run_on_obs(
            &topo,
            Obs::none().with_executor(ExecutorKind::Pool { workers }),
        )
        .expect("pooled apsp");
        assert_eq!(serial.distances, pooled.distances, "workers={workers}");
        assert_eq!(serial.next_hop, pooled.next_hop, "workers={workers}");
        assert_eq!(
            serial.girth_candidate, pooled.girth_candidate,
            "workers={workers}"
        );
        assert_eq!(serial.stats, pooled.stats, "workers={workers}");
    }
}

#[test]
fn ssp_pipeline_streams_identical_metrics_across_executors() {
    let g = generators::random_tree(20, 7);
    let topo = g.to_topology();
    let sources = [0u32, 3, 11];

    let record = |executor: ExecutorKind| {
        let rec = SharedObserver::new(MetricsRecorder::new());
        let handle = rec.observer();
        let result = ssp::run_on_obs(
            &topo,
            &sources,
            Obs::watching(&handle).with_executor(executor),
        )
        .expect("ssp runs");
        (result, rec.with(|r| r.stream().to_vec()))
    };

    let (serial, serial_stream) = record(ExecutorKind::Serial);
    let (pooled, pooled_stream) = record(ExecutorKind::Pool { workers: 3 });
    assert_eq!(serial.dist, pooled.dist);
    assert_eq!(serial.next_hop, pooled.next_hop);
    assert_eq!(serial.d0, pooled.d0);
    assert_eq!(serial.stats, pooled.stats);
    // RoundMetrics equality ignores wall-clock columns: the per-phase
    // streams ("bfs", "agg:max", "ssp:growth") must match row for row.
    assert_eq!(serial_stream, pooled_stream);
}

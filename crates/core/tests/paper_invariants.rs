//! Paper-invariant probes: the observer layer watching the real algorithms
//! for the structural claims the proofs rest on.
//!
//! * **Lemma 1** (pebble-APSP): during the wave phase, no directed edge
//!   ever carries more than one message per round, and no node is first
//!   reached by two different waves in the same round. A corollary checked
//!   here too: each wave propagates at exactly speed 1, so per stream the
//!   quantity `first_arrival − distance` is a constant (the wave's start
//!   offset).
//! * **Lemma 8 / Theorem 3** (S-SP): during the simultaneous growth of
//!   `|S|` BFS trees, a wave's first arrival at any node lags the ideal
//!   uncongested schedule by at most `|S|` rounds.

use std::collections::HashMap;

use dapsp_congest::{
    EdgeCongestionProbe, FanOut, ObserverHandle, SharedObserver, WaveArrivalProbe,
};
use dapsp_core::{apsp, ssp};
use dapsp_graph::{generators, Graph, INFINITY};

/// The four topology families of the acceptance criteria. Cliques are kept
/// smaller: pebble-APSP traffic is cubic in `n` there.
fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(32)),
        ("tree", generators::random_tree(32, 12)),
        ("regular6", generators::watts_strogatz(32, 3, 0.1, 12)),
        ("clique", generators::complete(16)),
    ]
}

#[test]
fn lemma1_wave_phase_congestion_and_spacing() {
    for (family, g) in families() {
        let congestion = SharedObserver::new(EdgeCongestionProbe::new(1).for_phase("apsp:waves"));
        let arrivals = SharedObserver::new(WaveArrivalProbe::new().for_phase("apsp:waves"));
        let fan = ObserverHandle::new(FanOut::new(vec![
            congestion.observer(),
            arrivals.observer(),
        ]));
        let result = apsp::run_observed(&g, &fan).expect("apsp runs");

        congestion.with(|p| {
            assert!(
                p.is_clean(),
                "{family}: Lemma 1 violated, edge loads {:?}",
                p.violations()
            );
            assert_eq!(p.max_load(), 1, "{family}: wave phase sent messages");
        });

        arrivals.with(|p| {
            assert!(
                !p.first_arrivals().is_empty(),
                "{family}: wave arrivals were recorded"
            );
            let collisions = p.node_collisions();
            assert!(
                collisions.is_empty(),
                "{family}: waves first-reached a node in the same round: {collisions:?}"
            );
            // Speed-1 propagation: within one wave, arrival − distance is
            // the same for every node (the wave's start offset). The root
            // itself is excluded — it only hears its own wave echoed back.
            let mut offsets: HashMap<u32, u64> = HashMap::new();
            for (&(stream, node), &round) in p.first_arrivals() {
                if node == stream {
                    continue;
                }
                let d = u64::from(
                    result
                        .distances
                        .get(stream, node)
                        .unwrap_or_else(|| panic!("{family}: d({stream}, {node}) known")),
                );
                let offset = round
                    .checked_sub(d)
                    .unwrap_or_else(|| panic!("{family}: wave {stream} outran distance"));
                let prev = offsets.entry(stream).or_insert(offset);
                assert_eq!(
                    *prev, offset,
                    "{family}: wave {stream} did not propagate at speed 1 (node {node})"
                );
            }
        });
    }
}

#[test]
fn ssp_wave_delay_is_at_most_the_source_count() {
    for (family, g) in families() {
        let n = g.num_nodes();
        for set_size in [1usize, 3, 8] {
            let step = (n / set_size).max(1);
            let sources: Vec<u32> = (0..n as u32).step_by(step).take(set_size).collect();
            let arrivals = SharedObserver::new(WaveArrivalProbe::new().for_phase("ssp:growth"));
            let handle = arrivals.observer();
            let result = ssp::run_observed(&g, &sources, &handle).expect("ssp runs");

            let index: HashMap<u32, usize> = result
                .sources
                .iter()
                .enumerate()
                .map(|(i, &s)| (s, i))
                .collect();
            let dist = |stream: u32, v: u32| -> Option<u64> {
                let i = *index.get(&stream)?;
                let d = result.dist[v as usize][i];
                (d != INFINITY).then_some(u64::from(d))
            };
            let max_delay = arrivals
                .with(|p| p.max_delay(dist))
                .expect("growth arrivals were recorded");
            assert!(
                max_delay >= 0,
                "{family}/|S|={}: a wave outran the BFS schedule ({max_delay})",
                sources.len()
            );
            assert!(
                max_delay <= sources.len() as i64,
                "{family}/|S|={}: wave delay {max_delay} exceeds |S|",
                sources.len()
            );
        }
    }
}

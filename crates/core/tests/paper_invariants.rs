//! Paper-invariant probes: the observer layer watching the real algorithms
//! for the structural claims the proofs rest on.
//!
//! * **Lemma 1** (pebble-APSP): during the wave phase, no directed edge
//!   ever carries more than one message per round, and no node is first
//!   reached by two different waves in the same round. A corollary checked
//!   here too: each wave propagates at exactly speed 1, so per stream the
//!   quantity `first_arrival − distance` is a constant (the wave's start
//!   offset).
//! * **Lemma 8 / Theorem 3** (S-SP): during the simultaneous growth of
//!   `|S|` BFS trees, a wave's first arrival at any node lags the ideal
//!   uncongested schedule by at most `|S|` rounds.
//! * **Fault model**: under a [`FaultPlan`] adversary, the
//!   `ReliableKernel`-wrapped pipelines stay *exact* for any loss rate
//!   below one, and even the unwrapped wave kernels can only lose
//!   information — a dropped message may leave a distance unknown or
//!   stale, never too small.

use std::collections::HashMap;

use dapsp_congest::{
    Config, EdgeCongestionProbe, FanOut, FaultPlan, ObserverHandle, SharedObserver,
    WaveArrivalProbe,
};
use dapsp_core::kernel::{run_protocol_on, WaveKernel};
use dapsp_core::{apsp, ssp};
use dapsp_graph::{generators, reference, Graph, INFINITY};

/// The four topology families of the acceptance criteria. Cliques are kept
/// smaller: pebble-APSP traffic is cubic in `n` there.
fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(32)),
        ("tree", generators::random_tree(32, 12)),
        ("regular6", generators::watts_strogatz(32, 3, 0.1, 12)),
        ("clique", generators::complete(16)),
    ]
}

#[test]
fn lemma1_wave_phase_congestion_and_spacing() {
    for (family, g) in families() {
        let congestion = SharedObserver::new(EdgeCongestionProbe::new(1).for_phase("apsp:waves"));
        let arrivals = SharedObserver::new(WaveArrivalProbe::new().for_phase("apsp:waves"));
        let fan = ObserverHandle::new(FanOut::new(vec![
            congestion.observer(),
            arrivals.observer(),
        ]));
        let result = apsp::run_observed(&g, &fan).expect("apsp runs");

        congestion.with(|p| {
            assert!(
                p.is_clean(),
                "{family}: Lemma 1 violated, edge loads {:?}",
                p.violations()
            );
            assert_eq!(p.max_load(), 1, "{family}: wave phase sent messages");
        });

        arrivals.with(|p| {
            assert!(
                !p.first_arrivals().is_empty(),
                "{family}: wave arrivals were recorded"
            );
            let collisions = p.node_collisions();
            assert!(
                collisions.is_empty(),
                "{family}: waves first-reached a node in the same round: {collisions:?}"
            );
            // Speed-1 propagation: within one wave, arrival − distance is
            // the same for every node (the wave's start offset). The root
            // itself is excluded — it only hears its own wave echoed back.
            let mut offsets: HashMap<u32, u64> = HashMap::new();
            for (&(stream, node), &round) in p.first_arrivals() {
                if node == stream {
                    continue;
                }
                let d = u64::from(
                    result
                        .distances
                        .get(stream, node)
                        .unwrap_or_else(|| panic!("{family}: d({stream}, {node}) known")),
                );
                let offset = round
                    .checked_sub(d)
                    .unwrap_or_else(|| panic!("{family}: wave {stream} outran distance"));
                let prev = offsets.entry(stream).or_insert(offset);
                assert_eq!(
                    *prev, offset,
                    "{family}: wave {stream} did not propagate at speed 1 (node {node})"
                );
            }
        });
    }
}

#[test]
fn ssp_wave_delay_is_at_most_the_source_count() {
    for (family, g) in families() {
        let n = g.num_nodes();
        for set_size in [1usize, 3, 8] {
            let step = (n / set_size).max(1);
            let sources: Vec<u32> = (0..n as u32).step_by(step).take(set_size).collect();
            let arrivals = SharedObserver::new(WaveArrivalProbe::new().for_phase("ssp:growth"));
            let handle = arrivals.observer();
            let result = ssp::run_observed(&g, &sources, &handle).expect("ssp runs");

            let index: HashMap<u32, usize> = result
                .sources
                .iter()
                .enumerate()
                .map(|(i, &s)| (s, i))
                .collect();
            let dist = |stream: u32, v: u32| -> Option<u64> {
                let i = *index.get(&stream)?;
                let d = result.dist[v as usize][i];
                (d != INFINITY).then_some(u64::from(d))
            };
            let max_delay = arrivals
                .with(|p| p.max_delay(dist))
                .expect("growth arrivals were recorded");
            assert!(
                max_delay >= 0,
                "{family}/|S|={}: a wave outran the BFS schedule ({max_delay})",
                sources.len()
            );
            assert!(
                max_delay <= sources.len() as i64,
                "{family}/|S|={}: wave delay {max_delay} exceeds |S|",
                sources.len()
            );
        }
    }
}

#[test]
fn reliable_apsp_equals_oracle_on_random_graphs_under_any_loss_below_one() {
    // The ReliableKernel exactness claim, probed across random topologies
    // and loss rates up to 50% (where barely a quarter of frame/ack round
    // trips survive): the distance matrix must equal the sequential oracle
    // bit-for-bit, with the adversary verifiably active.
    for seed in 0..4 {
        let g = generators::erdos_renyi_connected(16, 0.18, seed);
        let oracle = reference::apsp(&g);
        for loss in [0.05, 0.25, 0.5] {
            let plan = FaultPlan::uniform_loss(loss, seed.wrapping_mul(31) + 7);
            let (r, rel) = apsp::run_faulty(&g, plan)
                .unwrap_or_else(|e| panic!("seed {seed} loss {loss}: {e}"));
            assert_eq!(
                r.distances, oracle,
                "seed {seed} loss {loss}: wrong distances"
            );
            assert!(!rel.gave_up, "seed {seed} loss {loss}: a link gave up");
            assert!(
                r.stats.dropped > 0,
                "seed {seed} loss {loss}: adversary never fired"
            );
        }
    }
}

#[test]
fn reliable_ssp_equals_oracle_on_random_graphs_under_loss() {
    for seed in 0..3 {
        let g = generators::erdos_renyi_connected(16, 0.18, seed);
        let sources: Vec<u32> = (0..16).step_by(3).collect();
        let oracle = reference::s_shortest_paths(&g, &sources);
        let plan = FaultPlan::uniform_loss(0.2, 1000 + seed);
        let (r, rel) =
            ssp::run_faulty(&g, &sources, plan).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for (i, dists) in oracle.iter().enumerate() {
            for (v, &d) in dists.iter().enumerate() {
                assert_eq!(r.dist[v][i], d, "seed {seed}: d({v}, source {i}) wrong");
            }
        }
        assert!(!rel.gave_up && r.stats.dropped > 0, "seed {seed}");
    }
}

#[test]
fn lossy_waves_without_the_synchronizer_never_underestimate() {
    // The fault layer's delivery semantics, probed on the raw wave kernel:
    // a drop can only *remove* information. Whatever distance a node ends
    // up claiming was carried by some real path, so it is never below the
    // true distance — unreached stays INFINITY, never wrong.
    for seed in 0..6 {
        let g = generators::erdos_renyi_connected(20, 0.15, seed);
        let topo = g.to_topology();
        let oracle = reference::bfs(&g, 0);
        for loss in [0.1, 0.4, 0.8] {
            let config = Config::for_n(20).with_faults(FaultPlan::uniform_loss(loss, 500 + seed));
            let report = run_protocol_on(&topo, config, |ctx| WaveKernel::single_root(ctx, 0))
                .expect("lossy wave still terminates");
            for (v, state) in report.outputs.iter().enumerate() {
                let d = state.dist[0];
                assert!(
                    d == INFINITY || d >= oracle[v],
                    "seed {seed} loss {loss}: node {v} claims {d} < true {}",
                    oracle[v]
                );
            }
            // The root always knows itself exactly.
            assert_eq!(report.outputs[0].dist[0], 0);
        }
    }
}

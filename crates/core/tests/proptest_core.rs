//! Property tests for the paper's algorithms: exactness against the
//! centralized oracle, round bounds, and approximation guarantees, all on
//! randomized connected graphs.
#![allow(clippy::needless_range_loop)] // index loops mirror the matrix notation

use proptest::prelude::*;

use dapsp_core::{
    aggregate, approx, apsp, bfs, dominating, girth, girth_approx, metrics, routing, ssp, ssp_paper,
};
use dapsp_graph::{generators, reference, Graph, INFINITY};

fn connected(n: usize, p: f64, seed: u64) -> Graph {
    generators::erdos_renyi_connected(n, p, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 1: Algorithm 1 computes exactly the oracle's distances, in
    /// at most ~4n rounds — and completing at all certifies Lemma 1, since
    /// the simulator rejects any two waves sharing an edge-round.
    #[test]
    fn apsp_is_exact_and_linear(n in 2usize..36, p in 0.0f64..0.35, seed in any::<u64>()) {
        let g = connected(n, p, seed);
        let r = apsp::run(&g).expect("apsp");
        prop_assert_eq!(r.distances, reference::apsp(&g));
        prop_assert!(r.stats.rounds <= 4 * n as u64 + 10, "rounds={}", r.stats.rounds);
    }

    /// Next-hop tables always describe shortest paths.
    #[test]
    fn apsp_paths_are_shortest(n in 2usize..20, seed in any::<u64>()) {
        let g = connected(n, 0.2, seed);
        let r = apsp::run(&g).expect("apsp");
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let path = r.path(u, v);
                prop_assert_eq!(path.len() as u32 - 1, r.distances.get(u, v).unwrap());
                for w in path.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    /// Theorem 3: S-SP matches the oracle for arbitrary source sets, and
    /// its measured main-loop rounds respect the O(|S| + D) shape.
    #[test]
    fn ssp_is_exact(n in 2usize..32, p in 0.0f64..0.3, seed in any::<u64>(), nsrc in 1usize..10) {
        let g = connected(n, p, seed);
        let count = nsrc.min(n);
        // Spread sources deterministically over the id space.
        let sources: Vec<u32> = (0..count).map(|i| (i * n / count) as u32).collect();
        let mut sources = sources;
        sources.dedup();
        let r = ssp::run(&g, &sources).expect("ssp");
        let oracle = reference::s_shortest_paths(&g, &sources);
        for (i, _) in sources.iter().enumerate() {
            for v in 0..n {
                prop_assert_eq!(r.dist[v][i], oracle[i][v]);
            }
        }
        // Whole-pipeline bound: two O(D) phases plus the growth; D0 = 2·ecc(1).
        let bound = 4 * u64::from(r.d0) + r.budget + 16;
        prop_assert!(r.stats.rounds <= bound, "rounds={} bound={}", r.stats.rounds, bound);
    }

    /// The verbatim Algorithm 2 against the kernel-based production S-SP
    /// and the oracle: the kernel growth is exact, and every entry the
    /// verbatim schedule resolves is a real walk length — an overestimate
    /// at worst (the documented DESIGN.md §5 deviation), never an
    /// underestimate — with the unresolved count bookkept correctly.
    #[test]
    fn ssp_paper_never_underestimates_and_kernel_is_exact(
        n in 2usize..26, p in 0.0f64..0.3, seed in any::<u64>(), nsrc in 1usize..6
    ) {
        let g = connected(n, p, seed);
        let count = nsrc.min(n);
        let mut sources: Vec<u32> = (0..count).map(|i| (i * n / count) as u32).collect();
        sources.dedup();
        let paper = ssp_paper::run(&g, &sources).expect("ssp_paper");
        let kernel = ssp::run(&g, &sources).expect("ssp");
        let oracle = reference::s_shortest_paths(&g, &sources);
        let mut unresolved = 0u64;
        for (i, _) in sources.iter().enumerate() {
            for v in 0..n {
                prop_assert_eq!(kernel.dist[v][i], oracle[i][v], "kernel v={} source#{}", v, i);
                let got = paper.dist[v][i];
                if got == INFINITY {
                    unresolved += 1;
                } else {
                    prop_assert!(got >= oracle[i][v], "v={} source#{}: {} < oracle {}",
                                 v, i, got, oracle[i][v]);
                }
            }
        }
        prop_assert_eq!(unresolved, paper.unresolved);
    }

    /// BFS: distances, tree structure, and Claim 1 agree with the oracle.
    #[test]
    fn bfs_matches_oracle(n in 1usize..32, p in 0.0f64..0.3, seed in any::<u64>()) {
        let g = connected(n, p, seed);
        let root = (seed % n as u64) as u32;
        let r = bfs::run(&g, root).expect("bfs");
        prop_assert_eq!(&r.dist, &reference::bfs(&g, root));
        prop_assert_eq!(r.cycle_detected, !reference::is_tree(&g));
        let parents = r.tree.parent_ids(&g);
        for v in 0..n as u32 {
            if v != root {
                let p = parents[v as usize].unwrap();
                prop_assert_eq!(r.dist[p as usize] + 1, r.dist[v as usize]);
            }
        }
    }

    /// Aggregation computes the same fold as the host would, for every op.
    /// (Values are kept small enough that even the Sum fits the B-bit
    /// bandwidth at the smallest n, per the aggregate contract.)
    #[test]
    fn aggregation_matches_host_fold(n in 1usize..28, seed in any::<u64>(), values in proptest::collection::vec(0u64..16, 1..28)) {
        let n = n.min(values.len());
        let values = &values[..n];
        let g = connected(n, 0.2, seed);
        let t = bfs::run(&g, 0).expect("bfs").tree;
        use aggregate::AggOp::*;
        for (op, want) in [
            (Max, values.iter().copied().max().unwrap()),
            (Min, values.iter().copied().min().unwrap()),
            (Sum, values.iter().copied().sum()),
            (Or, u64::from(values.iter().any(|&v| v & 1 == 1))),
        ] {
            let input: Vec<u64> = if matches!(op, Or) {
                values.iter().map(|v| v & 1).collect()
            } else {
                values.to_vec()
            };
            let got = aggregate::run(&g, &t, &input, op).expect("aggregate").value;
            prop_assert_eq!(got, want, "op {:?}", op);
        }
    }

    /// Lemma 10 substitute: the k-dominating set covers and respects the
    /// Kutten–Peleg size bound for every k.
    #[test]
    fn dominating_set_properties(n in 1usize..36, p in 0.0f64..0.3, seed in any::<u64>(), k in 0u32..8) {
        let g = connected(n, p, seed);
        let t = bfs::run(&g, 0).expect("bfs").tree;
        let dom = dominating::run(&g, &t, k).expect("dominating");
        let ids = dom.member_ids();
        prop_assert!(reference::is_k_dominating_set(&g, &ids, k));
        prop_assert!(dom.size <= 1u64.max(n as u64 / (u64::from(k) + 1)),
                     "size {} n {} k {}", dom.size, n, k);
    }

    /// Lemmas 2–6 as one bundle: all five metrics match the oracle.
    #[test]
    fn metric_bundle_matches_oracle(n in 2usize..28, p in 0.0f64..0.3, seed in any::<u64>()) {
        let g = connected(n, p, seed);
        let a = apsp::run(&g).expect("apsp");
        let b = metrics::from_apsp(&g, &a).expect("metrics");
        prop_assert_eq!(Some(b.diameter), reference::diameter(&g));
        prop_assert_eq!(Some(b.radius), reference::radius(&g));
        prop_assert_eq!(Some(b.eccentricities.clone()), reference::eccentricities(&g));
        let center: Vec<u32> = (0..n as u32).filter(|&v| b.center[v as usize]).collect();
        prop_assert_eq!(Some(center), reference::center(&g));
        let periph: Vec<u32> = (0..n as u32).filter(|&v| b.peripheral[v as usize]).collect();
        prop_assert_eq!(Some(periph), reference::peripheral_vertices(&g));
    }

    /// Lemma 7: distributed girth equals the oracle girth.
    #[test]
    fn girth_matches_oracle(n in 3usize..26, p in 0.0f64..0.3, seed in any::<u64>()) {
        let g = connected(n, p, seed);
        prop_assert_eq!(girth::run(&g).expect("girth").girth, reference::girth(&g));
    }

    /// Theorem 4: the eccentricity estimates satisfy
    /// ecc <= estimate <= (1+ε)·ecc for random ε.
    #[test]
    fn approx_ecc_guarantee(n in 2usize..28, seed in any::<u64>(), eps in 0.05f64..2.0) {
        let g = connected(n, 0.1, seed);
        let r = approx::eccentricities(&g, eps).expect("approx");
        let exact = reference::eccentricities(&g).unwrap();
        for v in 0..n {
            prop_assert!(exact[v] <= r.estimates[v]);
            prop_assert!(f64::from(r.estimates[v]) <= (1.0 + eps) * f64::from(exact[v]) + 1e-9,
                         "v={} est={} exact={} eps={}", v, r.estimates[v], exact[v], eps);
        }
    }

    /// Theorem 5: the girth estimate satisfies g <= est <= (1+ε)·g.
    #[test]
    fn approx_girth_guarantee(n in 4usize..24, seed in any::<u64>(), eps in 0.1f64..1.5) {
        let g = connected(n, 0.15, seed);
        let r = girth_approx::run(&g, eps).expect("approx girth");
        match reference::girth(&g) {
            None => prop_assert_eq!(r.estimate, None),
            Some(truth) => {
                let est = r.estimate.unwrap();
                prop_assert!(est >= truth);
                prop_assert!(f64::from(est) <= (1.0 + eps) * f64::from(truth) + 1e-9);
            }
        }
    }


    /// k-BFS truncation is exactly the distance-filtered APSP, and the
    /// census matches the oracle's neighborhood counts.
    #[test]
    fn kbfs_is_filtered_apsp(n in 2usize..26, seed in any::<u64>(), k in 0u32..5) {
        let g = connected(n, 0.15, seed);
        let oracle = reference::apsp(&g);
        let r = apsp::run_truncated(&g, k).expect("kbfs");
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    r.result.distances.get(u, v),
                    oracle.get(u, v).filter(|&d| d <= k)
                );
            }
        }
        let counts = r.neighborhood_sizes();
        for v in 0..n as u32 {
            let want = (0..n as u32)
                .filter(|&u| oracle.get(v, u).is_some_and(|d| d <= k))
                .count() as u32;
            prop_assert_eq!(counts[v as usize], want);
        }
        prop_assert_eq!(
            r.covers_everything(),
            reference::diameter(&g).unwrap() <= k
        );
    }

    /// Routing: lone packets arrive in exactly their hop distance; with
    /// contention, never earlier and at most (#flows - 1) rounds later.
    #[test]
    fn routing_delivery_bounds(n in 4usize..22, seed in any::<u64>(), nflows in 1usize..6) {
        let g = connected(n, 0.2, seed);
        let tables = routing::RoutingTables::from_apsp(&apsp::run(&g).expect("apsp"));
        let flows: Vec<routing::Flow> = (0..nflows)
            .map(|i| routing::Flow {
                source: ((i * 3) % n) as u32,
                destination: ((i * 7 + n / 2) % n) as u32,
            })
            .collect();
        let r = routing::simulate_flows(&g, &tables, &flows).expect("flows");
        let oracle = reference::apsp(&g);
        for d in &r.deliveries {
            let hops = oracle.get(d.flow.source, d.flow.destination).unwrap();
            prop_assert_eq!(d.hops, hops);
            prop_assert!(d.arrival_round >= u64::from(hops));
            prop_assert!(d.queueing_delay <= (flows.len() as u64 - 1) * u64::from(hops).max(1));
        }
    }

    /// Corollary 4 memberships: approximate center/peripheral contain the
    /// exact sets.
    #[test]
    fn approx_membership_supersets(n in 2usize..24, seed in any::<u64>()) {
        let g = connected(n, 0.12, seed);
        let c = approx::center(&g, 0.5).expect("center");
        for v in reference::center(&g).unwrap() {
            prop_assert!(c.members[v as usize], "center {} missing", v);
        }
        let p = approx::peripheral_vertices(&g, 0.5).expect("peripheral");
        for v in reference::peripheral_vertices(&g).unwrap() {
            prop_assert!(p.members[v as usize], "peripheral {} missing", v);
        }
    }
}

//! Per-message budget enforcement, end to end.
//!
//! `Config::for_n` sets a per-message budget `B = 2⌈log₂ n⌉ + 8` and, in
//! debug builds, the engine asserts `bit_size() ≤ B` for **every** message
//! it commits — on the serial and the pool executor alike. Running every
//! algorithm in this crate here therefore turns any overweight message
//! type into a test failure: these tests assert success, and the engine's
//! debug assertion does the per-message work.
//!
//! (In release builds the assertion compiles out and these runs only check
//! that the algorithms complete; `scripts/verify.sh` runs the test suite
//! in debug mode, where the checks are live.)

use dapsp_congest::{bits_for_id, Config};
use dapsp_core::kernel::{run_protocol_on, WaveKernel};
use dapsp_core::{
    aggregate, approx, apsp, bfs, dominating, girth, girth_approx, leader, metrics, routing, ssp,
    ssp_paper, three_halves, two_vs_four,
};
use dapsp_graph::{generators, Graph};

fn zoo() -> Vec<Graph> {
    vec![
        generators::path(10),
        generators::cycle(9),
        generators::grid(3, 4),
        generators::complete(7),
        generators::lollipop(4, 5),
        generators::erdos_renyi_connected(20, 0.2, 11),
    ]
}

/// The default budget is the paper's `B = O(log n)`: exactly the
/// bandwidth, two node ids plus a constant.
#[test]
fn default_budget_is_two_ids_plus_constant() {
    for n in [2usize, 10, 1000, 1 << 20] {
        let cfg = Config::for_n(n);
        assert_eq!(cfg.message_budget, Some(2 * bits_for_id(n) + 8));
        assert_eq!(cfg.message_budget, Some(cfg.bandwidth_bits));
    }
}

/// Wave traffic: single-root BFS, Algorithm 1's stacked pebble + waves
/// (full and truncated), and Algorithm 2's queued growth.
#[test]
fn wave_protocols_respect_the_budget() {
    for g in zoo() {
        let n = g.num_nodes() as u32;
        bfs::run(&g, 0).unwrap();
        apsp::run(&g).unwrap();
        apsp::run_truncated(&g, 3).unwrap();
        ssp::run(&g, &[0, n - 1]).unwrap();
        ssp_paper::run(&g, &[0, n - 1]).unwrap();
    }
}

/// Convergecast traffic, including the largest partials this crate ever
/// aggregates (sums of per-node counts `≤ n`).
#[test]
fn aggregation_respects_the_budget() {
    for g in zoo() {
        let n = g.num_nodes();
        let t1 = bfs::run(&g, 0).unwrap().tree;
        let counts: Vec<u64> = (0..n as u64).collect();
        for op in [
            aggregate::AggOp::Max,
            aggregate::AggOp::Min,
            aggregate::AggOp::Sum,
            aggregate::AggOp::Or,
        ] {
            aggregate::run(&g, &t1, &counts, op).unwrap();
        }
        dominating::run(&g, &t1, 2).unwrap();
    }
}

/// The composite pipelines (metrics, girth, approximations, Algorithm 3)
/// and the remaining message types (leader claims, routed packets).
#[test]
fn composite_pipelines_respect_the_budget() {
    for g in zoo() {
        metrics::diameter(&g).unwrap();
        girth::run(&g).unwrap();
        girth_approx::run(&g, 0.5).unwrap();
        approx::diameter(&g, 0.5).unwrap();
        three_halves::run(&g, 7).unwrap();
        two_vs_four::run(&g, 7).unwrap();
        leader::elect(&g).unwrap();
        let tables = routing::RoutingTables::from_apsp(&apsp::run(&g).unwrap());
        let flows = vec![routing::Flow {
            source: 0,
            destination: g.num_nodes() as u32 - 1,
        }];
        routing::simulate_flows(&g, &tables, &flows).unwrap();
    }
}

/// The pool executor runs the same budget check as the serial one:
/// kernel traffic must pass it on worker threads too.
#[test]
fn pool_executor_checks_kernel_envelopes() {
    for threads in [2usize, 4] {
        let g = generators::erdos_renyi_connected(24, 0.2, 3);
        let topo = g.to_topology();
        let config = Config::for_n(24).with_threads(threads);
        let report = run_protocol_on(&topo, config, |ctx| WaveKernel::single_root(ctx, 0)).unwrap();
        assert!(report.outputs.iter().all(|s| s.dist[0] != u32::MAX));
    }
}

/// The reliable transport's worst frame fits the budget exactly. A frame
/// spends 5 bits of overhead (data-presence + frame parity +
/// payload-presence + ack-presence + ack parity) around its payload; the
/// widest payload any pipeline ships is Algorithm 1's stacked pebble +
/// wave (two stack tags, a root id, a depth count). At power-of-two `n`
/// that sum lands on `B` with zero bits to spare — this pins the
/// arithmetic so a future field on any layer fails here first.
#[test]
fn worst_case_reliable_frame_is_exactly_the_budget() {
    use dapsp_congest::{bits_for_count, Width};
    for n in [4usize, 8, 16, 64, 1 << 10, 1 << 16] {
        let budget = Config::for_n(n).message_budget.unwrap();
        let frame_overhead = Width::ZERO.tag().tag().tag().tag().tag().bits();
        assert_eq!(frame_overhead, 5);
        // Stacked APSP wave payload: pebble tag + wave tag + root id +
        // depth counter (depths reach n − 1, encoded as count(n)).
        let stacked_wave = Width::ZERO.tag().tag().id(n).count(n).bits();
        assert!(
            frame_overhead + stacked_wave <= budget,
            "n={n}: frame {frame_overhead}+{stacked_wave} exceeds budget {budget}"
        );
        if n.is_power_of_two() && bits_for_count(n) == bits_for_id(n) {
            assert_eq!(
                frame_overhead + stacked_wave,
                budget,
                "n={n}: the worst frame should use the whole budget"
            );
        }
    }
}

/// End-to-end: the reliable pipelines' frames — acks, retransmissions,
/// piggybacked data — all pass the live debug budget assert on both
/// executors. Loss forces retransmissions, so the retransmit path is
/// exercised, not just the happy path.
#[test]
fn reliable_pipelines_respect_the_budget_under_loss() {
    use dapsp_congest::FaultPlan;
    for g in zoo() {
        let n = g.num_nodes() as u32;
        let plan = FaultPlan::uniform_loss(0.15, 77);
        bfs::run_faulty(&g, 0, plan.clone()).unwrap();
        apsp::run_faulty(&g, plan.clone()).unwrap();
        ssp::run_faulty(&g, &[0, n - 1], plan).unwrap();
    }
}

/// An over-budget *ack* is rejected in debug builds: wrap a kernel whose
/// payload alone fills the whole budget, so the reliable frame around it
/// (parity + presence + ack bits) must overflow. The panic proves ack
/// overhead is charged against `B`, not smuggled past it.
#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "message budget")]
fn over_budget_ack_frame_panics_in_debug() {
    use dapsp_congest::{NodeContext, Port, Width};
    use dapsp_core::kernel::{Protocol, ReliableKernel, Tx};

    /// A kernel whose single payload is declared exactly as wide as the
    /// budget — legal bare, one bit too heavy once framed.
    struct FullWidth {
        budget: u32,
    }
    impl Protocol for FullWidth {
        type Payload = ();
        type Output = ();
        fn init(&mut self, ctx: &NodeContext<'_>, tx: &mut Tx<()>) {
            if ctx.node_id() == 0 {
                tx.send(0, ());
            }
        }
        fn on_message(&mut self, _: &NodeContext<'_>, _: Port, _: (), _: &mut Tx<()>) {}
        fn width(&self, _: &()) -> Width {
            Width::ZERO.raw(self.budget)
        }
        fn finish(self, _: &NodeContext<'_>) {}
    }

    let g = generators::path(2);
    let topo = g.to_topology();
    let budget = Config::for_n(2).message_budget.unwrap();
    // Bandwidth admits the framed payload; the budget alone must reject
    // the frame's extra bits.
    let config = Config::for_n(2)
        .with_bandwidth_bits(2000)
        .with_message_budget(Some(budget));
    let _ = run_protocol_on(&topo, config, |_| {
        ReliableKernel::new(FullWidth { budget }, 2, 3)
    });
}

/// A message wider than the budget (but within an inflated bandwidth) is
/// rejected in debug builds — the enforcement the other tests rely on.
#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "message budget")]
fn overweight_messages_panic_in_debug() {
    use dapsp_congest::{Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Simulator};

    #[derive(Clone, Debug)]
    struct Fat;
    impl Message for Fat {
        fn bit_size(&self) -> u32 {
            1000
        }
    }
    struct Sender;
    impl NodeAlgorithm for Sender {
        type Message = Fat;
        type Output = ();
        fn on_start(&mut self, _: &NodeContext<'_>, out: &mut Outbox<Fat>) {
            out.send(0, Fat);
        }
        fn on_round(&mut self, _: &NodeContext<'_>, _: &Inbox<Fat>, _: &mut Outbox<Fat>) {}
        fn into_output(self, _: &NodeContext<'_>) {}
    }

    let g = generators::path(2);
    let topo = g.to_topology();
    // Bandwidth admits the message; the budget alone must reject it.
    let config = Config::for_n(2)
        .with_bandwidth_bits(2000)
        .with_message_budget(Some(8));
    let sim = Simulator::new(&topo, config, |_| Sender);
    let _ = sim.run();
}

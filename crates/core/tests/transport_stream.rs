//! Integration checks tying the transport layer's end-of-run counters to
//! the observer stream: the per-round `retransmits`/`acks` columns recorded
//! by [`MetricsRecorder`] must sum exactly to the [`RelStats`] totals the
//! reliable entry points return — every transmitted frame is either
//! committed or dropped at the engine's choke point, and both paths carry
//! the frame's [`TraceTags`].

use dapsp_congest::{FaultPlan, MetricsRecorder, SharedObserver};
use dapsp_core::{apsp, bfs, Obs};
use dapsp_graph::generators;

/// Runs a lossy reliable pipeline and asserts the stream's transport
/// columns reproduce the returned `RelStats` and the `on_transport`
/// summaries exactly.
fn assert_columns_match(
    recorder: &SharedObserver<MetricsRecorder>,
    rel: &dapsp_core::kernel::RelStats,
    expected_phases: &[&str],
    tag: &str,
) {
    recorder.with(|rec| {
        let retransmits: u64 = rec.stream().iter().map(|m| m.retransmits).sum();
        let acks: u64 = rec.stream().iter().map(|m| m.acks).sum();
        assert_eq!(
            retransmits, rel.retransmissions,
            "{tag}: retransmit column sum != RelStats total"
        );
        assert_eq!(
            acks, rel.acks_sent,
            "{tag}: ack column sum != RelStats total"
        );
        // Each reliable phase reported one transport summary, labeled with
        // its phase, and the summaries add up to the folded RelStats.
        let phases: Vec<&str> = rec.transports().iter().map(|(p, _)| &**p).collect();
        assert_eq!(phases, expected_phases, "{tag}: transport phase labels");
        let sum_retx: u64 = rec
            .transports()
            .iter()
            .map(|(_, t)| t.retransmissions)
            .sum();
        let sum_acks: u64 = rec.transports().iter().map(|(_, t)| t.acks_sent).sum();
        assert_eq!(sum_retx, rel.retransmissions, "{tag}: transport summaries");
        assert_eq!(sum_acks, rel.acks_sent, "{tag}: transport ack summaries");
    });
}

#[test]
fn bfs_transport_columns_sum_to_relstats() {
    let g = generators::watts_strogatz(24, 2, 0.1, 5);
    let recorder = SharedObserver::new(MetricsRecorder::new());
    let handle = recorder.observer();
    let (result, rel) = bfs::run_faulty_on(
        &g.to_topology(),
        0,
        FaultPlan::uniform_loss(0.25, 11),
        Obs::watching(&handle),
    )
    .expect("reliable BFS survives 25% loss");
    assert!(result.reached_all(), "BFS must still reach everyone");
    assert!(
        rel.retransmissions > 0,
        "25% loss must force at least one retransmission"
    );
    assert!(rel.acks_sent > 0, "reliable BFS sends acks");
    assert_columns_match(&recorder, &rel, &["bfs:reliable"], "bfs");
}

#[test]
fn apsp_pipeline_transport_columns_sum_across_phases() {
    let g = generators::watts_strogatz(16, 2, 0.1, 9);
    let recorder = SharedObserver::new(MetricsRecorder::new());
    let handle = recorder.observer();
    let (result, rel) = apsp::run_faulty_on(
        &g.to_topology(),
        FaultPlan::uniform_loss(0.2, 13),
        Obs::watching(&handle),
    )
    .expect("reliable APSP survives 20% loss");
    assert_eq!(result.next_hop.len(), 16, "full routing table");
    assert!(rel.retransmissions > 0, "loss must force retransmissions");
    // Two reliable phases (the T_1 BFS, then the wave phase), each
    // reporting its own transport summary; the folded RelStats the entry
    // point returns is their sum, and so are the stream columns.
    assert_columns_match(
        &recorder,
        &rel,
        &["bfs:reliable", "apsp:waves:reliable"],
        "apsp",
    );
}

#[test]
fn fault_free_reliable_run_reports_zero_retransmits() {
    let g = generators::path(12);
    let recorder = SharedObserver::new(MetricsRecorder::new());
    let handle = recorder.observer();
    let (_, rel) = bfs::run_faulty_on(
        &g.to_topology(),
        0,
        FaultPlan::new(3),
        Obs::watching(&handle),
    )
    .expect("fault-free reliable BFS");
    assert_eq!(rel.retransmissions, 0, "no loss, no retransmissions");
    assert!(!rel.gave_up);
    assert_columns_match(&recorder, &rel, &["bfs:reliable"], "fault-free");
}

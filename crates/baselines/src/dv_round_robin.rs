//! Serialized round-robin distance-vector (RIP-style), `Θ(n·D)` rounds.
//!
//! Every node keeps a full routing table. Without a bandwidth limit it
//! would broadcast the whole table each round and converge in `D` rounds;
//! under CONGEST the table must be serialized, so each round each edge
//! carries the table's *next* entry in cyclic order. An entry therefore
//! crosses a given edge once every (known-table-size) rounds, and distance
//! information advances one hop per cycle — `Θ(n·D)` rounds overall. This
//! is the behaviour §3.1 of the paper predicts for serialized
//! distance-vector protocols.

use dapsp_congest::{
    bits_for_count, bits_for_id, Config, Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port,
};
use dapsp_graph::{DistanceMatrix, Graph, INFINITY};

use dapsp_core::{run_algorithm, CoreError};

use crate::BaselineResult;

#[derive(Clone, Debug)]
struct Entry {
    id: u32,
    dist: u32,
    n: u32,
}

impl Message for Entry {
    fn bit_size(&self) -> u32 {
        bits_for_id(self.n as usize) + bits_for_count(self.n as usize)
    }
}

struct DvNode {
    n: u32,
    dist: Vec<u32>,
    /// Ids with a known (finite) distance, in insertion order — the
    /// serialized "table" each cursor walks.
    known: Vec<u32>,
    cursor: Vec<usize>,
    budget: u64,
    rounds_done: u64,
    last_change: u64,
}

impl NodeAlgorithm for DvNode {
    type Message = Entry;
    type Output = (Vec<u32>, u64);

    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Entry>, out: &mut Outbox<Entry>) {
        self.rounds_done += 1;
        for (_port, msg) in inbox.iter() {
            let via = msg.dist + 1;
            if via < self.dist[msg.id as usize] {
                if self.dist[msg.id as usize] == INFINITY {
                    self.known.push(msg.id);
                }
                self.dist[msg.id as usize] = via;
                self.last_change = self.rounds_done;
            }
        }
        if self.rounds_done <= self.budget && !self.known.is_empty() {
            for port in 0..ctx.degree() as Port {
                let c = self.cursor[port as usize] % self.known.len();
                self.cursor[port as usize] = c + 1;
                let id = self.known[c];
                out.send(
                    port,
                    Entry {
                        id,
                        dist: self.dist[id as usize],
                        n: self.n,
                    },
                );
            }
        }
    }

    fn is_active(&self) -> bool {
        self.rounds_done <= self.budget
    }

    fn into_output(self, _ctx: &NodeContext<'_>) -> (Vec<u32>, u64) {
        (self.dist, self.last_change)
    }
}

/// Runs the round-robin distance-vector protocol for `budget` rounds and
/// reports both the final tables and the convergence round (the last round
/// any table changed). A budget of `n · (n + 2) + 2n` is always sufficient (the host does not know `D`, so `D` is bounded by `n`):
/// information advances at least one hop per table cycle of length `<= n`.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] / [`CoreError::Disconnected`] on bad graphs.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_baselines::distance_vector;
/// use dapsp_graph::{generators, reference};
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::path(8);
/// let r = distance_vector(&g)?;
/// assert_eq!(r.distances, reference::apsp(&g));
/// # Ok(())
/// # }
/// ```
pub fn distance_vector(graph: &Graph) -> Result<BaselineResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    // The protocol has no termination detection; give it a budget that is
    // provably enough and measure the actual convergence round.
    let budget = (n as u64) * (n as u64 + 2) + 2 * n as u64;
    let report = run_algorithm(
        graph,
        Config::for_n(n).with_max_rounds(budget + 10),
        |ctx| {
            let me = ctx.node_id();
            let mut dist = vec![INFINITY; n];
            dist[me as usize] = 0;
            DvNode {
                n: n as u32,
                dist,
                known: vec![me],
                cursor: vec![0; ctx.degree()],
                budget,
                rounds_done: 0,
                last_change: 0,
            }
        },
    )?;
    let mut distances = DistanceMatrix::new(n);
    let mut converged = 0;
    for (v, (row, last_change)) in report.outputs.iter().enumerate() {
        if row.contains(&INFINITY) {
            return Err(CoreError::Disconnected);
        }
        distances.set_row(v as u32, row);
        converged = converged.max(*last_change);
    }
    Ok(BaselineResult {
        distances,
        rounds_to_converge: converged,
        stats: report.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    #[test]
    fn converges_to_oracle_distances() {
        for g in [
            generators::path(10),
            generators::cycle(9),
            generators::star(8),
            generators::grid(3, 4),
            generators::erdos_renyi_connected(20, 0.15, 2),
        ] {
            let r = distance_vector(&g).unwrap();
            assert_eq!(r.distances, reference::apsp(&g));
        }
    }

    #[test]
    fn convergence_scales_like_n_times_d_on_paths() {
        // On a path, the farthest id needs ~n rounds per hop cycle once the
        // table is full; convergence should grow clearly superlinearly.
        let r16 = distance_vector(&generators::path(16)).unwrap();
        let r32 = distance_vector(&generators::path(32)).unwrap();
        assert!(
            r32.rounds_to_converge >= 3 * r16.rounds_to_converge,
            "n=16: {}, n=32: {} — expected ~quadratic growth",
            r16.rounds_to_converge,
            r32.rounds_to_converge
        );
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = dapsp_graph::Graph::builder(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        assert_eq!(
            distance_vector(&b.build()).unwrap_err(),
            CoreError::Disconnected
        );
    }
}

#[cfg(test)]
mod width_tests {
    use super::*;
    use dapsp_congest::Config;

    /// A table entry is a fixed-width id plus a fixed-width distance —
    /// within the budget for all n.
    #[test]
    fn entry_width_fits_the_budget() {
        for n in [2usize, 100, 1 << 16] {
            let budget = Config::for_n(n).message_budget.unwrap();
            let entry = Entry {
                id: n as u32 - 1,
                dist: n as u32 - 1,
                n: n as u32,
            };
            assert!(entry.bit_size() <= budget, "n={n}");
        }
    }
}

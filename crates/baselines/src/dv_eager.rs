//! Event-driven ("triggered-update") distance-vector.
//!
//! Instead of cycling the whole table, a node only announces entries that
//! changed, smallest id first, one per edge per round. In a benign
//! synchronous start this behaves like `n` interleaved BFS floods and
//! converges in roughly `n + D` rounds — but unlike Algorithm 1 it has no
//! congestion guarantee: estimates can arrive out of order (a blocked
//! shortest route loses to a longer uncontended one), which triggers
//! re-announcements and extra message volume. The benchmarks compare both
//! its rounds and its messages against Algorithm 1.

use dapsp_congest::{
    bits_for_count, bits_for_id, Config, Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port,
};
use dapsp_graph::{DistanceMatrix, Graph, INFINITY};

use dapsp_core::{run_algorithm, CoreError};

use crate::BaselineResult;

#[derive(Clone, Debug)]
struct Update {
    id: u32,
    dist: u32,
    n: u32,
}

impl Message for Update {
    fn bit_size(&self) -> u32 {
        // Fixed-width fields sized by their domains: charging by the
        // *current* distance value would be a variable-width encoding
        // with no delimiter, under-counting the wire cost.
        bits_for_id(self.n as usize) + bits_for_count(self.n as usize)
    }
}

struct EagerNode {
    n: u32,
    dist: Vec<u32>,
    /// Per-port sets of ids whose current distance still has to be
    /// announced on that port.
    pending: Vec<std::collections::BTreeSet<u32>>,
}

impl EagerNode {
    fn enqueue_everywhere_except(&mut self, id: u32, except: Option<Port>) {
        for (p, set) in self.pending.iter_mut().enumerate() {
            if Some(p as Port) != except {
                set.insert(id);
            }
        }
    }
}

impl NodeAlgorithm for EagerNode {
    type Message = Update;
    type Output = Vec<u32>;

    fn on_start(&mut self, ctx: &NodeContext<'_>, _out: &mut Outbox<Update>) {
        let me = ctx.node_id();
        self.dist[me as usize] = 0;
        self.enqueue_everywhere_except(me, None);
    }

    fn on_round(&mut self, ctx: &NodeContext<'_>, inbox: &Inbox<Update>, out: &mut Outbox<Update>) {
        for (port, msg) in inbox.iter() {
            let via = msg.dist + 1;
            if via < self.dist[msg.id as usize] {
                self.dist[msg.id as usize] = via;
                // Triggered update: re-announce the improvement everywhere
                // except where it came from.
                self.enqueue_everywhere_except(msg.id, Some(port));
            }
        }
        for port in 0..ctx.degree() as Port {
            if let Some(&id) = self.pending[port as usize].iter().next() {
                self.pending[port as usize].remove(&id);
                out.send(
                    port,
                    Update {
                        id,
                        dist: self.dist[id as usize],
                        n: self.n,
                    },
                );
            }
        }
    }

    fn is_active(&self) -> bool {
        self.pending.iter().any(|set| !set.is_empty())
    }

    fn into_output(self, _ctx: &NodeContext<'_>) -> Vec<u32> {
        self.dist
    }
}

/// Runs the event-driven distance-vector protocol to quiescence.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] / [`CoreError::Disconnected`] on bad graphs.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_baselines::distance_vector_eager;
/// use dapsp_graph::{generators, reference};
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::grid(3, 3);
/// let r = distance_vector_eager(&g)?;
/// assert_eq!(r.distances, reference::apsp(&g));
/// # Ok(())
/// # }
/// ```
pub fn distance_vector_eager(graph: &Graph) -> Result<BaselineResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let report = run_algorithm(
        graph,
        Config::for_n(n).with_max_rounds(64 * (n as u64) * (n as u64) + 1000),
        |ctx| EagerNode {
            n: n as u32,
            dist: vec![INFINITY; n],
            pending: vec![std::collections::BTreeSet::new(); ctx.degree()],
        },
    )?;
    let mut distances = DistanceMatrix::new(n);
    for (v, row) in report.outputs.iter().enumerate() {
        if row.contains(&INFINITY) {
            return Err(CoreError::Disconnected);
        }
        distances.set_row(v as u32, row);
    }
    Ok(BaselineResult {
        distances,
        rounds_to_converge: report.stats.rounds,
        stats: report.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    #[test]
    fn converges_to_oracle_distances() {
        for g in [
            generators::path(12),
            generators::cycle(10),
            generators::complete(7),
            generators::grid(4, 4),
            generators::erdos_renyi_connected(24, 0.12, 5),
            generators::barbell(5, 3),
        ] {
            let r = distance_vector_eager(&g).unwrap();
            assert_eq!(r.distances, reference::apsp(&g));
        }
    }

    #[test]
    fn roughly_linear_rounds_but_more_messages_than_apsp() {
        let g = generators::erdos_renyi_connected(40, 0.1, 7);
        let eager = distance_vector_eager(&g).unwrap();
        let apsp = dapsp_core::apsp::run(&g).unwrap();
        // Same answers...
        assert_eq!(eager.distances, apsp.distances);
        // ...but re-announcements cost messages: eager sends at least as
        // many as the congestion-free schedule, usually more.
        assert!(eager.stats.messages + 200 >= apsp.stats.messages);
    }

    #[test]
    fn rejects_disconnected() {
        let g = dapsp_graph::Graph::builder(2).build();
        assert_eq!(
            distance_vector_eager(&g).unwrap_err(),
            CoreError::Disconnected
        );
    }
}

#[cfg(test)]
mod width_tests {
    use super::*;
    use dapsp_congest::Config;

    /// An update is a fixed-width id plus a fixed-width distance over
    /// `0..=n` — within the budget, and independent of the current value.
    #[test]
    fn update_width_fits_the_budget() {
        for n in [2usize, 100, 1 << 16] {
            let budget = Config::for_n(n).message_budget.unwrap();
            let far = Update {
                id: n as u32 - 1,
                dist: n as u32 - 1,
                n: n as u32,
            };
            assert!(far.bit_size() <= budget, "n={n}");
            let near = Update { dist: 0, ..far };
            assert_eq!(
                near.bit_size(),
                far.bit_size(),
                "width must be domain-fixed"
            );
        }
    }
}

//! Serialized link-state (OSPF-style) APSP: flood the topology, then solve
//! locally.
//!
//! Every node announces its incident edges; every received *new* edge
//! record is forwarded on all other ports, one record per edge per round
//! (a record is two node ids — exactly a `B`-bit message). Since in the end
//! every node must know all `m` records and an edge can deliver only one
//! per round, this takes `Θ(m + D)` rounds and `Θ(m²)` messages — the
//! serialized version of the paper's "link-state algorithms exchange
//! information about all edges" observation. The final all-pairs
//! computation is free local work (each node knows the whole graph).

use dapsp_congest::{
    bits_for_id, Config, Inbox, Message, NodeAlgorithm, NodeContext, Outbox, Port,
};
use dapsp_graph::{Graph, INFINITY};

use dapsp_core::{run_algorithm, CoreError};

use crate::BaselineResult;

/// One edge record `(u, v)` with `u < v`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EdgeRecord {
    u: u32,
    v: u32,
    n: u32,
}

impl Message for EdgeRecord {
    fn bit_size(&self) -> u32 {
        2 * bits_for_id(self.n as usize)
    }
}

struct FloodNode {
    n: u32,
    known: std::collections::BTreeSet<(u32, u32)>,
    /// Per-port queues of records still to forward there.
    pending: Vec<std::collections::VecDeque<(u32, u32)>>,
}

impl FloodNode {
    fn learn(&mut self, record: (u32, u32), from: Option<Port>) {
        if self.known.insert(record) {
            for (p, queue) in self.pending.iter_mut().enumerate() {
                if Some(p as Port) != from {
                    queue.push_back(record);
                }
            }
        }
    }
}

impl NodeAlgorithm for FloodNode {
    type Message = EdgeRecord;
    type Output = std::collections::BTreeSet<(u32, u32)>;

    fn on_start(&mut self, ctx: &NodeContext<'_>, _out: &mut Outbox<EdgeRecord>) {
        let me = ctx.node_id();
        for &nb in ctx.neighbor_ids() {
            self.learn((me.min(nb), me.max(nb)), None);
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        inbox: &Inbox<EdgeRecord>,
        out: &mut Outbox<EdgeRecord>,
    ) {
        for (port, msg) in inbox.iter() {
            self.learn((msg.u, msg.v), Some(port));
        }
        for port in 0..ctx.degree() as Port {
            if let Some((u, v)) = self.pending[port as usize].pop_front() {
                out.send(port, EdgeRecord { u, v, n: self.n });
            }
        }
    }

    fn is_active(&self) -> bool {
        self.pending.iter().any(|queue| !queue.is_empty())
    }

    fn into_output(self, _ctx: &NodeContext<'_>) -> Self::Output {
        self.known
    }
}

/// Runs serialized link-state flooding to quiescence and computes APSP
/// locally at node 0 (all nodes hold the same topology; the matrix is
/// assembled once for the result).
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] / [`CoreError::Disconnected`] on bad graphs.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_baselines::link_state;
/// use dapsp_graph::{generators, reference};
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::cycle(8);
/// let r = link_state(&g)?;
/// assert_eq!(r.distances, reference::apsp(&g));
/// # Ok(())
/// # }
/// ```
pub fn link_state(graph: &Graph) -> Result<BaselineResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let m = graph.num_edges() as u64;
    let report = run_algorithm(
        graph,
        Config::for_n(n).with_max_rounds(4 * m + 16 * n as u64 + 100),
        |ctx| FloodNode {
            n: n as u32,
            known: Default::default(),
            pending: vec![Default::default(); ctx.degree()],
        },
    )?;
    // Every node must have learned the full topology.
    for known in &report.outputs {
        if known.len() as u64 != m {
            return Err(CoreError::Disconnected);
        }
    }
    // Local computation (free in the model): rebuild and solve.
    let mut b = Graph::builder(n);
    for &(u, v) in &report.outputs[0] {
        b.add_edge(u, v).expect("records are valid edges");
    }
    let local = b.build();
    let distances = dapsp_graph::reference::apsp(&local);
    if (0..n as u32).any(|v| distances.row(v).contains(&INFINITY)) {
        return Err(CoreError::Disconnected);
    }
    Ok(BaselineResult {
        distances,
        rounds_to_converge: report.stats.rounds,
        stats: report.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    #[test]
    fn converges_to_oracle_distances() {
        for g in [
            generators::path(9),
            generators::cycle(8),
            generators::grid(3, 4),
            generators::complete(6),
            generators::erdos_renyi_connected(18, 0.2, 4),
        ] {
            let r = link_state(&g).unwrap();
            assert_eq!(r.distances, reference::apsp(&g));
        }
    }

    #[test]
    fn rounds_scale_with_edge_count() {
        // Dense graph: m = n(n-1)/2 records must cross every edge-cut of
        // small width... compare a sparse and a dense instance of equal n.
        let sparse = link_state(&generators::cycle(14)).unwrap();
        let dense = link_state(&generators::complete(14)).unwrap();
        // On the cycle, each edge-direction must carry roughly the m/2
        // records originating behind it: ~m/2 + D rounds.
        assert!(sparse.rounds_to_converge >= 7);
        // Messages explode quadratically in m for the dense case.
        assert!(dense.stats.messages > sparse.stats.messages * 10);
    }

    #[test]
    fn rejects_disconnected() {
        let g = dapsp_graph::Graph::builder(3).build();
        assert_eq!(link_state(&g).unwrap_err(), CoreError::Disconnected);
    }
}

#[cfg(test)]
mod width_tests {
    use super::*;
    use dapsp_congest::Config;

    /// An edge record is two fixed-width node ids — within the budget.
    #[test]
    fn edge_record_width_fits_the_budget() {
        for n in [2usize, 100, 1 << 16] {
            let budget = Config::for_n(n).message_budget.unwrap();
            let record = EdgeRecord {
                u: n as u32 - 2,
                v: n as u32 - 1,
                n: n as u32,
            };
            assert!(record.bit_size() <= budget, "n={n}");
        }
    }
}

//! The unmodified classical approach: one BFS per node, run sequentially.
//!
//! "In the distributed model considered in this paper, this approach (if
//! not modified) takes time `O(n·D)`" (§3.1). Each BFS costs `O(D)` rounds
//! and they run back to back — this is precisely the schedule Algorithm 1's
//! pebble compresses to `O(n)` by overlapping the searches without
//! congestion.

use dapsp_graph::{DistanceMatrix, Graph};

use dapsp_core::{bfs, CoreError};

use crate::BaselineResult;

/// Runs `n` breadth-first searches one after another and assembles the
/// distance matrix. `Θ(n·D)` rounds.
///
/// # Errors
///
/// * [`CoreError::EmptyGraph`] / [`CoreError::Disconnected`] on bad graphs.
/// * [`CoreError::Sim`] on simulator failures.
///
/// # Examples
///
/// ```
/// use dapsp_baselines::sequential_bfs;
/// use dapsp_graph::{generators, reference};
///
/// # fn main() -> Result<(), dapsp_core::CoreError> {
/// let g = generators::star(7);
/// let r = sequential_bfs(&g)?;
/// assert_eq!(r.distances, reference::apsp(&g));
/// # Ok(())
/// # }
/// ```
pub fn sequential_bfs(graph: &Graph) -> Result<BaselineResult, CoreError> {
    let n = graph.num_nodes();
    if n == 0 {
        return Err(CoreError::EmptyGraph);
    }
    let mut distances = DistanceMatrix::new(n);
    let mut stats = dapsp_congest::RunStats::default();
    for root in 0..n as u32 {
        let r = bfs::run(graph, root)?;
        if !r.reached_all() {
            return Err(CoreError::Disconnected);
        }
        distances.set_row(root, &r.dist);
        stats.absorb_sequential(&r.stats);
    }
    Ok(BaselineResult {
        distances,
        rounds_to_converge: stats.rounds,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference};

    #[test]
    fn matches_oracle() {
        for g in [
            generators::path(10),
            generators::grid(3, 4),
            generators::erdos_renyi_connected(20, 0.15, 9),
        ] {
            let r = sequential_bfs(&g).unwrap();
            assert_eq!(r.distances, reference::apsp(&g));
        }
    }

    #[test]
    fn costs_n_times_d_on_paths_where_apsp_is_linear() {
        let g = generators::path(40);
        let seq = sequential_bfs(&g).unwrap();
        let apsp = dapsp_core::apsp::run(&g).unwrap();
        assert_eq!(seq.distances, apsp.distances);
        // Sequential: sum of eccentricities ≈ n·D/ 1.5; Algorithm 1: ~3n.
        assert!(
            seq.stats.rounds > 4 * apsp.stats.rounds,
            "sequential {} vs pebbled {}",
            seq.stats.rounds,
            apsp.stats.rounds
        );
    }

    #[test]
    fn rejects_disconnected() {
        let g = dapsp_graph::Graph::builder(2).build();
        assert_eq!(sequential_bfs(&g).unwrap_err(), CoreError::Disconnected);
    }
}

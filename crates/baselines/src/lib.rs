//! Baseline distributed APSP algorithms, for comparison against the
//! paper's Algorithm 1.
//!
//! Section 3.1 of the paper observes that the two classical routing
//! approaches *without* bandwidth limits both finish in `D` rounds, but
//! once messages are restricted to `O(log n)` bits (serialized), "they will
//! need strictly superlinear (and sometimes quadratic) time". This crate
//! implements those serialized baselines so the claim can be measured:
//!
//! * [`distance_vector`] — RIP-style routing-table exchange, serialized
//!   **round-robin** (each round, each edge carries the table's next
//!   entry): information moves one hop per table cycle, `Θ(n·D)` rounds;
//! * [`distance_vector_eager`] — an event-driven distance-vector that only
//!   transmits changed entries (smallest id first). Fast in benign
//!   synchronous runs but with no worst-case congestion guarantee, and
//!   re-announcements on late improvements cost extra messages;
//! * [`link_state`] — OSPF-style full topology flooding with one edge
//!   record per message: every edge must carry all `m` records, `Θ(m + D)`
//!   rounds, `Θ(m²)` messages, then free local computation;
//! * [`sequential_bfs`] — the unmodified classical approach: one BFS per
//!   node, one after another, `Θ(n·D)` rounds (this is exactly the schedule
//!   Algorithm 1's pebble replaces).
//!
//! All baselines produce a [`DistanceMatrix`] checked against the oracle in
//! tests, so the comparison with Algorithm 1 is apples to apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dv_eager;
mod dv_round_robin;
mod flooding;
mod sequential;

pub use dv_eager::distance_vector_eager;
pub use dv_round_robin::distance_vector;
pub use flooding::link_state;
pub use sequential::sequential_bfs;

use dapsp_congest::RunStats;
use dapsp_graph::DistanceMatrix;

/// The outcome of a baseline APSP run.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// The computed all-pairs distances.
    pub distances: DistanceMatrix,
    /// Rounds until the computation was *complete* (for the round-robin
    /// distance vector, the last round in which any routing table changed;
    /// for the others, the quiescence round).
    pub rounds_to_converge: u64,
    /// Full simulation statistics (the simulation may run longer than
    /// `rounds_to_converge`, e.g. the round-robin protocol never stops by
    /// itself).
    pub stats: RunStats,
}

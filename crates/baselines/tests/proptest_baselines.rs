//! Property tests: every baseline computes the oracle's distances on
//! random connected graphs, and the cost relationships the paper predicts
//! hold.

use proptest::prelude::*;

use dapsp_baselines::{distance_vector, distance_vector_eager, link_state, sequential_bfs};
use dapsp_core::apsp;
use dapsp_graph::{generators, reference, Graph};

fn connected(n: usize, p: f64, seed: u64) -> Graph {
    generators::erdos_renyi_connected(n, p, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Five independent implementations, one truth.
    #[test]
    fn all_implementations_agree_with_the_oracle(n in 2usize..22, p in 0.0f64..0.3, seed in any::<u64>()) {
        let g = connected(n, p, seed);
        let truth = reference::apsp(&g);
        prop_assert_eq!(apsp::run(&g).expect("apsp").distances, truth.clone());
        prop_assert_eq!(sequential_bfs(&g).expect("seq").distances, truth.clone());
        prop_assert_eq!(distance_vector_eager(&g).expect("eager").distances, truth.clone());
        prop_assert_eq!(distance_vector(&g).expect("rr").distances, truth.clone());
        prop_assert_eq!(link_state(&g).expect("ls").distances, truth);
    }

    /// The pipelined algorithm never loses to the sequential schedule by
    /// more than the constant phase overhead.
    #[test]
    fn pipelining_never_loses(n in 3usize..26, seed in any::<u64>()) {
        let g = connected(n, 0.15, seed);
        let a = apsp::run(&g).expect("apsp");
        let s = sequential_bfs(&g).expect("seq");
        prop_assert!(a.stats.rounds <= s.stats.rounds + 12,
                     "pebbled {} vs sequential {}", a.stats.rounds, s.stats.rounds);
    }

    /// Link-state delivers the complete edge set to every node, which is
    /// why its message count is Θ(m²)-ish: at least m·(n-1)/something and
    /// bounded by 2·m² plus the announcements.
    #[test]
    fn link_state_message_volume(n in 3usize..20, seed in any::<u64>()) {
        let g = connected(n, 0.2, seed);
        let m = g.num_edges() as u64;
        let r = link_state(&g).expect("ls");
        prop_assert!(r.stats.messages <= 2 * m * m + 2 * m);
    }
}

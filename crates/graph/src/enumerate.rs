//! Exhaustive enumeration of small connected graphs, one per isomorphism
//! class.
//!
//! The conformance suite in `dapsp-core` checks the distributed algorithms
//! against the sequential oracles on *every* connected graph with up to
//! seven nodes — small enough to finish in seconds, large enough to contain
//! every troublesome local structure (odd cycles, bridges, cut vertices,
//! twins, high-degree hubs). This module produces that graph set.
//!
//! Generation is by augmentation: every connected graph on `n ≥ 2` nodes
//! contains a non-cut vertex (any leaf of a spanning tree), so deleting it
//! leaves a connected graph on `n − 1` nodes. Running the deletion
//! backwards, attaching a new vertex to every nonempty subset of every
//! connected `(n−1)`-graph reaches every connected `n`-graph; duplicates
//! are folded by a canonical form (the minimum edge bitmask over all
//! relabelings that respect 1-WL color classes — sound because the color
//! classes are isomorphism-invariant, and fast because only the few
//! regular graphs keep many candidate relabelings).
//!
//! The class counts are pinned to OEIS A001349 (connected graphs on `n`
//! unlabeled nodes): 1, 1, 2, 6, 21, 112, 853 for `n = 1..=7`.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use crate::Graph;

/// The largest node count [`connected_graphs`] supports.
pub const MAX_ENUMERATED_NODES: usize = 7;

/// Number of connected graphs on `n` unlabeled nodes for `n = 0..=7`
/// (OEIS A001349; the `n = 0` entry is a convention).
pub const CONNECTED_GRAPH_COUNTS: [usize; 8] = [1, 1, 1, 2, 6, 21, 112, 853];

/// Edge bit index of the unordered pair `(i, j)` in the triangular layout.
fn bit(i: usize, j: usize) -> u32 {
    let (a, b) = if i < j { (i, j) } else { (j, i) };
    1 << (b * (b - 1) / 2 + a)
}

/// Degree of `v` in the `n`-node mask graph.
fn degree(n: usize, mask: u32, v: usize) -> usize {
    (0..n).filter(|&u| u != v && mask & bit(u, v) != 0).count()
}

/// One deterministic mixing step for the WL color hashes.
fn mix(h: u64, x: u64) -> u64 {
    let mut v = h ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    v ^= v >> 33;
    v = v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    v ^ (v >> 29)
}

/// 1-WL refined vertex colors: start from degrees, then repeatedly hash in
/// the sorted multiset of neighbor colors. Isomorphism-invariant by
/// construction.
fn wl_colors(n: usize, mask: u32) -> Vec<u64> {
    let mut color: Vec<u64> = (0..n).map(|v| degree(n, mask, v) as u64).collect();
    for _ in 0..n {
        let mut next = Vec::with_capacity(n);
        for v in 0..n {
            let mut nc: Vec<u64> = (0..n)
                .filter(|&u| u != v && mask & bit(u, v) != 0)
                .map(|u| color[u])
                .collect();
            nc.sort_unstable();
            let mut h = mix(0x5851_F42D_4C95_7F2D, color[v]);
            for c in nc {
                h = mix(h, c);
            }
            next.push(h);
        }
        color = next;
    }
    color
}

/// Applies `perm` (old label → new label) to the edge mask.
fn relabel(n: usize, mask: u32, perm: &[usize]) -> u32 {
    let mut out = 0;
    for j in 1..n {
        for i in 0..j {
            if mask & bit(i, j) != 0 {
                out |= bit(perm[i], perm[j]);
            }
        }
    }
    out
}

/// The canonical form of `mask`: the minimum relabeled mask over all
/// permutations that keep each WL color class in its (color-sorted) label
/// block. Equal canonical forms ⇔ isomorphic graphs.
fn canonical(n: usize, mask: u32) -> u32 {
    let color = wl_colors(n, mask);
    // Vertices sorted by color; runs of equal color form the classes, and
    // class k's members receive the k-th block of new labels.
    let mut by_color: Vec<usize> = (0..n).collect();
    by_color.sort_by_key(|&v| color[v]);
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for &v in &by_color {
        match classes.last_mut() {
            Some(class) if color[class[0]] == color[v] => class.push(v),
            _ => classes.push(vec![v]),
        }
    }
    let mut perm = vec![0usize; n];
    let mut best = u32::MAX;
    fn walk(
        n: usize,
        mask: u32,
        classes: &mut [Vec<usize>],
        next_label: usize,
        perm: &mut [usize],
        best: &mut u32,
    ) {
        let Some((class, rest)) = classes.split_first_mut() else {
            *best = (*best).min(relabel(n, mask, perm));
            return;
        };
        // Heap-style in-place permutation of this class's members.
        #[allow(clippy::too_many_arguments)] // threads the full walk state
        fn arrange(
            n: usize,
            mask: u32,
            class: &mut Vec<usize>,
            pos: usize,
            base: usize,
            rest: &mut [Vec<usize>],
            perm: &mut [usize],
            best: &mut u32,
        ) {
            if pos == class.len() {
                walk(n, mask, rest, base + class.len(), perm, best);
                return;
            }
            for i in pos..class.len() {
                class.swap(pos, i);
                perm[class[pos]] = base + pos;
                arrange(n, mask, class, pos + 1, base, rest, perm, best);
                class.swap(pos, i);
            }
        }
        arrange(n, mask, class, 0, next_label, rest, perm, best);
    }
    walk(n, mask, &mut classes, 0, &mut perm, &mut best);
    best
}

/// Canonical edge masks of every connected graph on exactly `level` nodes,
/// sorted ascending, for `level = 1..=MAX_ENUMERATED_NODES`.
fn masks() -> &'static Vec<Vec<u32>> {
    static MASKS: OnceLock<Vec<Vec<u32>>> = OnceLock::new();
    MASKS.get_or_init(|| {
        let mut levels: Vec<Vec<u32>> = vec![vec![0]]; // n = 1: a single node
        for n in 2..=MAX_ENUMERATED_NODES {
            let mut seen = BTreeSet::new();
            for &parent in &levels[n - 2] {
                // Attach node n−1 to every nonempty subset of the parent.
                for subset in 1u32..1 << (n - 1) {
                    let mut mask = parent;
                    for v in 0..n - 1 {
                        if subset & (1 << v) != 0 {
                            mask |= bit(v, n - 1);
                        }
                    }
                    seen.insert(canonical(n, mask));
                }
            }
            levels.push(seen.into_iter().collect());
        }
        levels
    })
}

/// Every connected graph on exactly `n` nodes, one per isomorphism class,
/// in a deterministic order.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds [`MAX_ENUMERATED_NODES`] — the
/// enumeration is meant for exhaustive small-graph testing, not scale.
pub fn connected_graphs(n: usize) -> Vec<Graph> {
    assert!(
        (1..=MAX_ENUMERATED_NODES).contains(&n),
        "connected_graphs supports 1..={MAX_ENUMERATED_NODES} nodes, got {n}"
    );
    masks()[n - 1]
        .iter()
        .map(|&mask| {
            let mut b = Graph::builder(n);
            for j in 1..n {
                for i in 0..j {
                    if mask & bit(i, j) != 0 {
                        b.add_edge(i as u32, j as u32).expect("valid edge");
                    }
                }
            }
            b.build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn counts_match_oeis_a001349() {
        for (n, &count) in CONNECTED_GRAPH_COUNTS
            .iter()
            .enumerate()
            .take(MAX_ENUMERATED_NODES + 1)
            .skip(1)
        {
            assert_eq!(
                connected_graphs(n).len(),
                count,
                "wrong class count at n = {n}"
            );
        }
    }

    #[test]
    fn every_graph_is_connected_with_the_right_size() {
        for n in 1..=MAX_ENUMERATED_NODES {
            for g in connected_graphs(n) {
                assert_eq!(g.num_nodes(), n);
                assert!(reference::is_connected(&g), "disconnected graph at n = {n}");
            }
        }
    }

    #[test]
    fn no_two_graphs_are_isomorphic() {
        // Canonical forms are unique by construction; double-check with an
        // independent invariant census (degree sequence + sorted distance
        // multiset + girth) at the scale where collisions would be likely.
        for n in [5, 6] {
            let graphs = connected_graphs(n);
            let mut invariants = std::collections::HashMap::new();
            for (i, g) in graphs.iter().enumerate() {
                let mut degs: Vec<usize> = (0..n).map(|v| g.degree(v as u32)).collect();
                degs.sort_unstable();
                let d = reference::apsp(g);
                let mut dists: Vec<u32> = (0..n as u32)
                    .flat_map(|u| (0..n as u32).map(move |v| (u, v)))
                    .filter(|(u, v)| u < v)
                    .map(|(u, v)| d.get(u, v).unwrap())
                    .collect();
                dists.sort_unstable();
                invariants
                    .entry((degs, dists, reference::girth(g)))
                    .or_insert_with(Vec::new)
                    .push(i);
            }
            // Invariant collisions are expected (the census is weaker than
            // isomorphism) but each bucket must stay small relative to the
            // class count — a duplicated class would inflate the totals,
            // which counts_match_oeis_a001349 pins exactly.
            assert!(invariants.len() > graphs.len() / 2);
        }
    }

    #[test]
    fn canonical_form_is_invariant_under_relabeling() {
        // K_{1,3} (the claw) under two labelings.
        let claw_a = bit(0, 1) | bit(0, 2) | bit(0, 3);
        let claw_b = bit(3, 1) | bit(3, 2) | bit(3, 0);
        assert_eq!(canonical(4, claw_a), canonical(4, claw_b));
        // The path 0-1-2-3 under a scrambled labeling.
        let path_a = bit(0, 1) | bit(1, 2) | bit(2, 3);
        let path_b = bit(2, 0) | bit(0, 3) | bit(3, 1);
        assert_eq!(canonical(4, path_a), canonical(4, path_b));
        // ... and the claw and the path are not isomorphic.
        assert_ne!(canonical(4, claw_a), canonical(4, path_a));
    }

    #[test]
    fn rejects_out_of_range_sizes() {
        let too_big = MAX_ENUMERATED_NODES + 1;
        assert!(std::panic::catch_unwind(|| connected_graphs(0)).is_err());
        assert!(std::panic::catch_unwind(move || connected_graphs(too_big)).is_err());
    }
}

//! The undirected graph type and its builder.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use dapsp_congest::Topology;

/// Errors raised while building a [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: u32,
        /// The number of nodes in the graph under construction.
        num_nodes: usize,
    },
    /// An edge `(v, v)` was added.
    SelfLoop {
        /// The node with the attempted self-loop.
        node: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for a {num_nodes}-node graph")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
        }
    }
}

impl Error for GraphError {}

/// A simple undirected graph on nodes `0..n`.
///
/// Construct one with [`Graph::builder`]; the builder deduplicates edges and
/// rejects self-loops and out-of-range endpoints, so a `Graph` is always
/// simple.
///
/// # Examples
///
/// ```
/// use dapsp_graph::Graph;
///
/// # fn main() -> Result<(), dapsp_graph::GraphError> {
/// let mut b = Graph::builder(4);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(2, 3)?;
/// let g = b.build();
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl Graph {
    /// Starts building an `n`-node graph with no edges.
    pub fn builder(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The neighbors of `v` in increasing id order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// True if the edge `(u, v)` is present.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&v| (u as u32) < v)
                .map(move |&v| (u as u32, v))
        })
    }

    /// Renders the graph in Graphviz DOT format (undirected), one edge per
    /// line — handy for eyeballing generated topologies.
    ///
    /// # Examples
    ///
    /// ```
    /// use dapsp_graph::Graph;
    ///
    /// # fn main() -> Result<(), dapsp_graph::GraphError> {
    /// let mut b = Graph::builder(3);
    /// b.add_edge(0, 1)?;
    /// b.add_edge(1, 2)?;
    /// let dot = b.build().to_dot("triangle-less");
    /// assert!(dot.contains("0 -- 1;"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "graph \"{name}\" {{");
        for v in 0..self.num_nodes() {
            let _ = writeln!(out, "  {v};");
        }
        for (u, v) in self.edges() {
            let _ = writeln!(out, "  {u} -- {v};");
        }
        out.push_str("}\n");
        out
    }

    /// Converts the graph into a simulator [`Topology`].
    ///
    /// The conversion cannot fail: a `Graph` is simple and symmetric by
    /// construction.
    pub fn to_topology(&self) -> Topology {
        Topology::from_adjacency(self.adj.clone()).expect("a Graph is always a valid topology")
    }
}

/// Incremental constructor for [`Graph`]; see [`Graph::builder`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Adds the undirected edge `(u, v)`. Adding an existing edge is a no-op.
    ///
    /// # Errors
    ///
    /// Rejects self-loops and endpoints `>= n`.
    pub fn add_edge(&mut self, u: u32, v: u32) -> Result<&mut Self, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for w in [u, v] {
            if w as usize >= self.n {
                return Err(GraphError::NodeOutOfRange {
                    node: w,
                    num_nodes: self.n,
                });
            }
        }
        self.edges.insert((u.min(v), u.max(v)));
        Ok(self)
    }

    /// True if the edge is already present.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Number of distinct edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    pub fn build(self) -> Graph {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        Graph {
            adj,
            num_edges: self.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedupes_edges() {
        let mut b = Graph::builder(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn builder_rejects_self_loop() {
        let mut b = Graph::builder(3);
        assert_eq!(
            b.add_edge(2, 2).unwrap_err(),
            GraphError::SelfLoop { node: 2 }
        );
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = Graph::builder(3);
        assert!(matches!(
            b.add_edge(0, 3).unwrap_err(),
            GraphError::NodeOutOfRange {
                node: 3,
                num_nodes: 3
            }
        ));
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let mut b = Graph::builder(4);
        b.add_edge(2, 0).unwrap();
        b.add_edge(2, 3).unwrap();
        b.add_edge(2, 1).unwrap();
        let g = b.build();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let mut b = Graph::builder(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(0, 2).unwrap();
        let g = b.build();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn topology_conversion_preserves_structure() {
        let mut b = Graph::builder(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build();
        let t = g.to_topology();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.neighbors(1), &[0, 2]);
    }

    #[test]
    fn dot_export_lists_every_node_and_edge() {
        let mut b = Graph::builder(3);
        b.add_edge(0, 2).unwrap();
        let dot = b.build().to_dot("t");
        assert!(dot.starts_with("graph \"t\""));
        for needle in ["  0;", "  1;", "  2;", "  0 -- 2;"] {
            assert!(dot.contains(needle), "missing {needle}");
        }
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn display_of_errors() {
        assert!(GraphError::SelfLoop { node: 1 }.to_string().contains("1"));
    }
}

//! Plain-text edge-list serialization.
//!
//! Format: one `u v` pair per line, whitespace-separated; lines starting
//! with `#` and blank lines are ignored. An optional leading `n <count>`
//! line pins the node count (otherwise it is `max id + 1`). This is the
//! lowest-common-denominator format of network datasets (SNAP et al.), so
//! real topologies can be fed to the algorithms.

use std::error::Error;
use std::fmt;

use crate::graph::{Graph, GraphError};

/// Errors raised while parsing an edge list.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// A line was not a valid `u v` pair or `n <count>` header.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The edge list violated graph validity (self-loop / out-of-range).
    Graph(GraphError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed { line, content } => {
                write!(f, "malformed edge list at line {line}: {content:?}")
            }
            ParseError::Graph(e) => write!(f, "invalid edge: {e}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        ParseError::Graph(e)
    }
}

/// Parses an edge list.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed lines, self-loops, or ids exceeding
/// a declared `n` header.
///
/// # Examples
///
/// ```
/// use dapsp_graph::io;
///
/// # fn main() -> Result<(), dapsp_graph::io::ParseError> {
/// let g = io::from_edge_list("# a triangle plus a tail\n0 1\n1 2\n2 0\n2 3\n")?;
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 4);
/// # Ok(())
/// # }
/// ```
pub fn from_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut declared_n: Option<usize> = None;
    let mut max_id = 0u32;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (a, b) = (parts.next(), parts.next());
        let malformed = || ParseError::Malformed {
            line: idx + 1,
            content: raw.to_string(),
        };
        match (a, b, parts.next()) {
            (Some("n"), Some(count), None) => {
                declared_n = Some(count.parse().map_err(|_| malformed())?);
            }
            (Some(u), Some(v), None) => {
                let u: u32 = u.parse().map_err(|_| malformed())?;
                let v: u32 = v.parse().map_err(|_| malformed())?;
                max_id = max_id.max(u).max(v);
                pairs.push((u, v));
            }
            _ => return Err(malformed()),
        }
    }
    let n = declared_n.unwrap_or(if pairs.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    let mut b = Graph::builder(n);
    for (u, v) in pairs {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Serializes a graph as an edge list with an `n` header, in a format
/// [`from_edge_list`] round-trips.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, io};
///
/// let g = generators::cycle(4);
/// let text = io::to_edge_list(&g);
/// assert_eq!(io::from_edge_list(&text).unwrap(), g);
/// ```
pub fn to_edge_list(g: &Graph) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "n {}", g.num_nodes());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trips_generated_graphs() {
        for g in [
            generators::path(7),
            generators::complete(5),
            generators::erdos_renyi_connected(20, 0.2, 3),
            Graph::builder(3).build(), // isolated nodes need the n header
        ] {
            assert_eq!(from_edge_list(&to_edge_list(&g)).unwrap(), g);
        }
    }

    #[test]
    fn ignores_comments_and_blanks() {
        let g = from_edge_list("# hi\n\n0 1\n\n# bye\n1 2\n").unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn reports_malformed_lines_with_position() {
        let err = from_edge_list("0 1\nnonsense\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 2, .. }));
        let err = from_edge_list("0 1 2\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_invalid_edges() {
        assert!(matches!(
            from_edge_list("3 3\n").unwrap_err(),
            ParseError::Graph(GraphError::SelfLoop { node: 3 })
        ));
        assert!(matches!(
            from_edge_list("n 2\n0 5\n").unwrap_err(),
            ParseError::Graph(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_input_is_the_empty_graph() {
        assert_eq!(from_edge_list("").unwrap().num_nodes(), 0);
        assert_eq!(from_edge_list("n 4\n").unwrap().num_nodes(), 4);
    }

    use crate::Graph;
}

//! Hard graph families behind the paper's lower bounds, plus an analytic
//! round-lower-bound certifier.
//!
//! The paper's lower bounds (Theorems 2, 6 and 8; Lemmas 8, 9 and 11) reduce
//! two-party set disjointness to distributed graph problems: Alice's and
//! Bob's private inputs become edges on the two sides of a sparse cut, and a
//! global property (here: the diameter) reveals whether the sets intersect.
//! Since disjointness on `N` bits requires `Ω(N)` bits of communication and
//! each round moves at most `B · |cut|` bits across the cut, any algorithm
//! needs `Ω(N / (B · |cut|))` rounds — plus the trivial `Ω(D)`.
//!
//! Lower bounds cannot be *run*, but they can be *exhibited*: this module
//! builds the hard instances (their diameter dichotomy is verified against
//! the oracle in tests) and [`RoundLowerBound`] computes the certified
//! number of rounds, which the benchmarks plot against measured round
//! counts of the upper-bound algorithms.
//!
//! # The 2-vs-3 construction (Theorem 6 shape)
//!
//! For `k` index pairs, take nodes `u, v`, rows `a_0..a_{k-1}` and
//! `b_0..b_{k-1}`; wire `u–a_i`, `v–b_i`, `u–v` and the matching `a_i–b_i`.
//! Alice encodes her set `α` of unordered index pairs by *omitting* the edge
//! `a_i–a_j` exactly when `{i,j} ∈ α`; Bob does the same on his side with
//! `β`. Every pair of nodes is then at distance ≤ 2 except possibly
//! `(a_i, b_j)`: those are at distance 2 iff `a_i–a_j` or `b_i–b_j`
//! survives, i.e. the diameter is **2 iff `α ∩ β = ∅` and 3 otherwise**.
//! The cut has `k + 1` edges while the inputs have `k(k-1)/2` bits each, so
//! the certified bound is `Ω(k / B) = Ω(n / B)` rounds.

use crate::graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// An unordered index pair `{i, j}` with `i != j`, both `< k`.
pub type IndexPair = (u32, u32);

/// The analytic certificate: how many rounds *any* algorithm (even
/// randomized, by the disjointness bound) needs on a hard instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundLowerBound {
    /// Size of one player's disjointness input in bits.
    pub input_bits: u64,
    /// Number of edges crossing the Alice/Bob cut.
    pub cut_edges: u64,
    /// Hop diameter of the instance (every distributed algorithm needs
    /// `Ω(D)` rounds just to communicate end to end).
    pub diameter: u64,
}

impl RoundLowerBound {
    /// The certified lower bound on rounds at bandwidth `B`:
    /// `max(⌈input_bits / (B · cut_edges)⌉, diameter)`.
    ///
    /// The disjointness communication bound is `Ω(N)` with a small constant;
    /// this method reports the clean `N / (B·cut)` form, so treat it as
    /// correct up to that constant (the benches only need the growth shape).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bits == 0` or `cut_edges == 0`.
    pub fn rounds(&self, bandwidth_bits: u32) -> u64 {
        assert!(bandwidth_bits > 0, "bandwidth must be positive");
        assert!(self.cut_edges > 0, "cut must be nonempty");
        self.input_bits
            .div_ceil(u64::from(bandwidth_bits) * self.cut_edges)
            .max(self.diameter)
    }
}

/// A constructed hard instance.
#[derive(Clone, Debug)]
pub struct HardInstance {
    /// The graph itself.
    pub graph: Graph,
    /// The number of index pairs `k` encoded per side.
    pub k: usize,
    /// Whether `α ∩ β ≠ ∅` (the "large diameter" branch of the dichotomy).
    pub intersecting: bool,
    /// The diameter this instance must have (verified in tests against the
    /// oracle).
    pub expected_diameter: u32,
    /// The certificate for this instance.
    pub bound: RoundLowerBound,
    /// The nodes on Alice's side of the cut.
    pub alice_nodes: Vec<u32>,
}

fn validate_pairs(k: usize, pairs: &[IndexPair], who: &str) {
    for &(i, j) in pairs {
        assert!(i != j, "{who} pair ({i},{j}) is degenerate");
        assert!(
            (i as usize) < k && (j as usize) < k,
            "{who} pair ({i},{j}) out of range for k={k}"
        );
    }
}

fn pairs_intersect(alice: &[IndexPair], bob: &[IndexPair]) -> bool {
    let norm = |&(i, j): &IndexPair| (i.min(j), i.max(j));
    let a: std::collections::BTreeSet<_> = alice.iter().map(norm).collect();
    bob.iter().any(|p| a.contains(&norm(p)))
}

/// Builds the diameter **2-vs-3** instance described in the module docs
/// (Theorem 6 of the paper): `n = 2k + 2` nodes, diameter 2 iff
/// `alice ∩ bob = ∅`, certified `Ω(k²/(B·k)) = Ω(n/B)` rounds.
///
/// `alice` and `bob` are sets of unordered index pairs in `0..k`.
///
/// # Panics
///
/// Panics if `k < 2` or any pair is degenerate or out of range.
pub fn two_vs_three(k: usize, alice: &[IndexPair], bob: &[IndexPair]) -> HardInstance {
    assert!(k >= 2, "need at least two index pairs");
    validate_pairs(k, alice, "alice");
    validate_pairs(k, bob, "bob");
    let n = 2 * k + 2;
    let u = 0u32;
    let v = (k + 1) as u32;
    let a = |i: u32| 1 + i;
    let b = |i: u32| (k + 2) as u32 + i;
    let mut builder = Graph::builder(n);
    builder.add_edge(u, v).expect("valid edge");
    for i in 0..k as u32 {
        builder.add_edge(u, a(i)).expect("valid edge");
        builder.add_edge(v, b(i)).expect("valid edge");
        builder.add_edge(a(i), b(i)).expect("valid edge");
    }
    // Start from complete sides, omit the encoded pairs.
    for i in 0..k as u32 {
        for j in (i + 1)..k as u32 {
            if !alice.iter().any(|&(x, y)| (x.min(y), x.max(y)) == (i, j)) {
                builder.add_edge(a(i), a(j)).expect("valid edge");
            }
            if !bob.iter().any(|&(x, y)| (x.min(y), x.max(y)) == (i, j)) {
                builder.add_edge(b(i), b(j)).expect("valid edge");
            }
        }
    }
    let intersecting = pairs_intersect(alice, bob);
    let expected_diameter = if intersecting { 3 } else { 2 };
    let alice_nodes: Vec<u32> = std::iter::once(u).chain((0..k as u32).map(a)).collect();
    HardInstance {
        graph: builder.build(),
        k,
        intersecting,
        expected_diameter,
        bound: RoundLowerBound {
            input_bits: (k * (k - 1) / 2) as u64,
            cut_edges: (k + 1) as u64,
            diameter: u64::from(expected_diameter),
        },
        alice_nodes,
    }
}

/// The Theorem 8 variant: same construction plus a triangle `u–t1–t2`
/// whose nodes also attach to `v`, so the family has **girth 3** and an
/// unchanged 2-vs-3 diameter dichotomy, while computing all 2-BFS trees
/// (and hence all 2-neighborhood counts) still decides disjointness.
/// `n = 2k + 4`; the cut grows to `k + 3` edges (`t1–v` and `t2–v` cross).
///
/// # Panics
///
/// Panics if `k < 2` or any pair is degenerate or out of range.
pub fn girth3_two_bfs_hard(k: usize, alice: &[IndexPair], bob: &[IndexPair]) -> HardInstance {
    let base = two_vs_three(k, alice, bob);
    let n0 = base.graph.num_nodes();
    let v = (k + 1) as u32;
    let mut builder = Graph::builder(n0 + 2);
    for (x, y) in base.graph.edges() {
        builder.add_edge(x, y).expect("valid edge");
    }
    let (t1, t2) = (n0 as u32, n0 as u32 + 1);
    builder.add_edge(0, t1).expect("valid edge");
    builder.add_edge(0, t2).expect("valid edge");
    builder.add_edge(v, t1).expect("valid edge");
    builder.add_edge(v, t2).expect("valid edge");
    builder.add_edge(t1, t2).expect("valid edge");
    let mut alice_nodes = base.alice_nodes;
    alice_nodes.extend([t1, t2]);
    HardInstance {
        graph: builder.build(),
        alice_nodes,
        bound: RoundLowerBound {
            cut_edges: base.bound.cut_edges + 2,
            ..base.bound
        },
        ..base
    }
}

/// The diameter-gap family used for the Theorem 2 experiment: every row
/// node of [`two_vs_three`] grows a pendant path of `h - 1` extra nodes, so
/// distances between far path ends become `2h` (disjoint) vs `2h + 1`
/// (intersecting) while the cut stays `k + 1` edges.
///
/// With `n = 2 + 2kh` nodes and diameter `D ≈ 2h` the certified bound is
/// `Ω(k²/(B·k)) = Ω(k/B) = Ω(n/(B·D)) · h ≥ Ω(n/(B·D))` rounds — the
/// `Ω(n/(D·B) + D)` shape of Theorem 2.
///
/// The published construction (full version of the paper) achieves a gap of
/// 2 (`d` vs `d+2`); this executable variant has a gap of 1 (`2h` vs
/// `2h+1`), which certifies the identical bound for *exact* diameter
/// computation at any diameter scale and keeps the construction verifiable.
///
/// # Panics
///
/// Panics if `k < 2`, `h < 1`, or any pair is degenerate or out of range.
pub fn diameter_gap(k: usize, h: usize, alice: &[IndexPair], bob: &[IndexPair]) -> HardInstance {
    assert!(h >= 1, "path length h must be at least 1");
    let base = two_vs_three(k, alice, bob);
    if h == 1 {
        return base;
    }
    let n = 2 + 2 * k * h;
    let mut builder = Graph::builder(n);
    // Re-embed: u=0, v=k+1 in the base become u=0, v=1 here; row node
    // a_i (base id 1+i) becomes the path head 2 + i*h; b_i similarly.
    let remap = |x: u32| -> u32 {
        let k32 = k as u32;
        let h32 = h as u32;
        if x == 0 {
            0
        } else if x == k32 + 1 {
            1
        } else if x <= k32 {
            2 + (x - 1) * h32 // a_{x-1} head
        } else {
            2 + (k32 + (x - k32 - 2)) * h32 // b_{x-k-2} head
        }
    };
    for (x, y) in base.graph.edges() {
        builder.add_edge(remap(x), remap(y)).expect("valid edge");
    }
    // Pendant paths off every row head.
    for row in 0..(2 * k) as u32 {
        let head = 2 + row * h as u32;
        for t in 1..h as u32 {
            builder
                .add_edge(head + t - 1, head + t)
                .expect("valid edge");
        }
    }
    let expected_diameter = (2 * h - 2) as u32 + base.expected_diameter;
    let mut alice_nodes = vec![0u32];
    for i in 0..k as u32 {
        let head = 2 + i * h as u32;
        alice_nodes.extend(head..head + h as u32);
    }
    HardInstance {
        graph: builder.build(),
        k,
        intersecting: base.intersecting,
        expected_diameter,
        bound: RoundLowerBound {
            input_bits: (k * (k - 1) / 2) as u64,
            cut_edges: (k + 1) as u64,
            diameter: u64::from(expected_diameter),
        },
        alice_nodes,
    }
}

/// Samples a random set of unordered index pairs over `0..k`, each included
/// independently with probability `density`. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `k < 2` or `density` is not in `[0, 1]`.
pub fn random_pair_set(k: usize, density: f64, seed: u64) -> Vec<IndexPair> {
    assert!(k >= 2, "need at least two indices");
    assert!(
        (0.0..=1.0).contains(&density),
        "density must be a probability"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut pairs = Vec::new();
    for i in 0..k as u32 {
        for j in (i + 1)..k as u32 {
            if rng.gen_bool(density) {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

/// Builds a canonical pair of (Alice, Bob) inputs that either intersect in
/// exactly one pair or are provably disjoint, for dichotomy demos.
///
/// Disjoint branch: Alice takes pairs `{0, j}` (j ≥ 1), Bob takes pairs
/// `{1, j}` (j ≥ 2) — no unordered pair is shared. Intersecting branch:
/// additionally both hold `{k-2, k-1}`.
///
/// # Panics
///
/// Panics if `k < 4`.
pub fn canonical_inputs(k: usize, intersecting: bool) -> (Vec<IndexPair>, Vec<IndexPair>) {
    assert!(k >= 4, "canonical inputs need k >= 4");
    let mut alice: Vec<IndexPair> = (1..(k - 1) as u32).map(|j| (0, j)).collect();
    let mut bob: Vec<IndexPair> = (2..(k - 1) as u32).map(|j| (1, j)).collect();
    if intersecting {
        let shared = ((k - 2) as u32, (k - 1) as u32);
        alice.push(shared);
        bob.push(shared);
    }
    (alice, bob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn two_vs_three_dichotomy_on_canonical_inputs() {
        for k in [4, 6, 10] {
            for intersecting in [false, true] {
                let (alice, bob) = canonical_inputs(k, intersecting);
                let inst = two_vs_three(k, &alice, &bob);
                assert_eq!(inst.intersecting, intersecting);
                assert_eq!(
                    reference::diameter(&inst.graph),
                    Some(inst.expected_diameter),
                    "k={k} intersecting={intersecting}"
                );
            }
        }
    }

    #[test]
    fn two_vs_three_dichotomy_on_random_inputs() {
        for seed in 0..10 {
            let k = 8;
            let alice = random_pair_set(k, 0.3, seed);
            let bob = random_pair_set(k, 0.3, seed + 1000);
            let inst = two_vs_three(k, &alice, &bob);
            assert_eq!(
                reference::diameter(&inst.graph),
                Some(inst.expected_diameter),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn cut_size_is_k_plus_one() {
        let (alice, bob) = canonical_inputs(5, false);
        let inst = two_vs_three(5, &alice, &bob);
        let in_alice = |x: u32| inst.alice_nodes.contains(&x);
        let crossing = inst
            .graph
            .edges()
            .filter(|&(x, y)| in_alice(x) != in_alice(y))
            .count() as u64;
        assert_eq!(crossing, inst.bound.cut_edges);
    }

    #[test]
    fn girth3_family_has_girth_3_and_same_dichotomy() {
        for intersecting in [false, true] {
            let (alice, bob) = canonical_inputs(6, intersecting);
            let inst = girth3_two_bfs_hard(6, &alice, &bob);
            assert_eq!(reference::girth(&inst.graph), Some(3));
            assert_eq!(
                reference::diameter(&inst.graph),
                Some(inst.expected_diameter)
            );
        }
    }

    #[test]
    fn diameter_gap_family_diameters() {
        for h in [1usize, 2, 3, 5] {
            for intersecting in [false, true] {
                let (alice, bob) = canonical_inputs(5, intersecting);
                let inst = diameter_gap(5, h, &alice, &bob);
                assert_eq!(
                    reference::diameter(&inst.graph),
                    Some(inst.expected_diameter),
                    "h={h} intersecting={intersecting}"
                );
                assert_eq!(
                    inst.expected_diameter,
                    (2 * h - 2) as u32 + if intersecting { 3 } else { 2 }
                );
            }
        }
    }

    #[test]
    fn certifier_math() {
        let b = RoundLowerBound {
            input_bits: 1000,
            cut_edges: 10,
            diameter: 3,
        };
        assert_eq!(b.rounds(10), 10); // 1000/(10·10)=10 > 3
        assert_eq!(b.rounds(1000), 3); // communication term below D
    }

    #[test]
    fn certified_bound_grows_linearly_in_n_at_fixed_bandwidth() {
        let b16 = two_vs_three(16, &[], &[]).bound;
        let b32 = two_vs_three(32, &[], &[]).bound;
        // input_bits ~ k²/2, cut ~ k → bound ~ k/(2B).
        let r16 = b16.rounds(8);
        let r32 = b32.rounds(8);
        assert!(r32 >= 2 * r16 - 2, "r16={r16} r32={r32}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_pairs() {
        two_vs_three(4, &[(0, 9)], &[]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_degenerate_pairs() {
        two_vs_three(4, &[(1, 1)], &[]);
    }
}

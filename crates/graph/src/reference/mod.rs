//! Centralized oracle algorithms.
//!
//! Every distributed result in this repository is checked against these
//! straightforward sequential implementations. They favor obviousness over
//! speed (the fastest one is `O(n·m)`), which is exactly what a test oracle
//! should do.

mod bfs;
mod domination;
mod floyd_warshall;
mod girth;
mod metrics;

pub use bfs::{apsp, bfs, is_connected, s_shortest_paths};
pub use domination::{distance_to_set, is_dominating_set, is_k_dominating_set};
pub use floyd_warshall::floyd_warshall;
pub use girth::{girth, is_tree};
pub use metrics::{center, diameter, eccentricities, eccentricity, peripheral_vertices, radius};

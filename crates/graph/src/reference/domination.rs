//! Verification oracles for (k-)dominating sets (Definition 9).

use crate::distance::INFINITY;
use crate::graph::Graph;

/// True if every node of the graph is within distance `k` of some node in
/// `dom` (a *k-dominating set*, Definition 9 of the paper).
///
/// An empty `dom` only dominates the empty graph.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference};
///
/// let g = generators::path(7); // 0-1-2-3-4-5-6
/// assert!(reference::is_k_dominating_set(&g, &[1, 3, 5], 1));
/// assert!(!reference::is_k_dominating_set(&g, &[1, 5], 1)); // node 3 uncovered
/// assert!(reference::is_k_dominating_set(&g, &[1, 5], 2));
/// assert!(reference::is_k_dominating_set(&g, &[3], 3));
/// ```
///
/// # Panics
///
/// Panics if any dominator id is `>= n`.
pub fn is_k_dominating_set(g: &Graph, dom: &[u32], k: u32) -> bool {
    let n = g.num_nodes();
    if n == 0 {
        return true;
    }
    if dom.is_empty() {
        return false;
    }
    // Multi-source BFS from all dominators.
    let mut dist = vec![INFINITY; n];
    let mut queue = std::collections::VecDeque::new();
    for &d in dom {
        assert!((d as usize) < n, "dominator out of range");
        if dist[d as usize] == INFINITY {
            dist[d as usize] = 0;
            queue.push_back(d);
        }
    }
    while let Some(u) = queue.pop_front() {
        if dist[u as usize] >= k {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v as usize] == INFINITY {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist.iter().all(|&d| d <= k)
}

/// True if `dom` is a 1-dominating set for the nodes in `targets`: every
/// target is in `dom` or adjacent to a member of `dom`.
///
/// This is the property Remark 6 of the paper needs for the high-degree set
/// `H(V)` in Algorithm 3.
///
/// # Panics
///
/// Panics if any id is `>= n`.
pub fn is_dominating_set(g: &Graph, dom: &[u32], targets: &[u32]) -> bool {
    let n = g.num_nodes();
    let mut in_dom = vec![false; n];
    for &d in dom {
        in_dom[d as usize] = true;
    }
    targets
        .iter()
        .all(|&t| in_dom[t as usize] || g.neighbors(t).iter().any(|&u| in_dom[u as usize]))
}

/// Distance from every node to its nearest member of `sources`
/// (multi-source BFS). Unreachable nodes get [`INFINITY`].
///
/// # Panics
///
/// Panics if any source is `>= n`.
pub fn distance_to_set(g: &Graph, sources: &[u32]) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut queue = std::collections::VecDeque::new();
    for &s in sources {
        assert!((s as usize) < n, "source out of range");
        if dist[s as usize] == INFINITY {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v as usize] == INFINITY {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::reference::bfs::bfs;

    #[test]
    fn whole_vertex_set_dominates_at_k_zero() {
        let g = generators::cycle(6);
        let all: Vec<u32> = (0..6).collect();
        assert!(is_k_dominating_set(&g, &all, 0));
    }

    #[test]
    fn single_center_dominates_star() {
        let g = generators::star(9);
        assert!(is_k_dominating_set(&g, &[0], 1));
        assert!(!is_k_dominating_set(&g, &[1], 1));
        assert!(is_k_dominating_set(&g, &[1], 2));
    }

    #[test]
    fn empty_dom_fails_on_nonempty_graph() {
        let g = generators::path(3);
        assert!(!is_k_dominating_set(&g, &[], 5));
    }

    #[test]
    fn k_domination_matches_bfs_definition() {
        let g = generators::erdos_renyi_connected(20, 0.15, 7);
        let dom = [0u32, 10];
        for k in 0..6 {
            let expected = (0..20u32).all(|v| dom.iter().any(|&d| bfs(&g, d)[v as usize] <= k));
            assert_eq!(is_k_dominating_set(&g, &dom, k), expected, "k={k}");
        }
    }

    #[test]
    fn targeted_domination() {
        let g = generators::path(5);
        assert!(is_dominating_set(&g, &[1], &[0, 1, 2]));
        assert!(!is_dominating_set(&g, &[1], &[4]));
        assert!(is_dominating_set(&g, &[], &[]));
    }

    #[test]
    fn distance_to_set_multi_source() {
        let g = generators::path(7);
        let d = distance_to_set(&g, &[0, 6]);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1, 0]);
    }
}

//! A second, independent APSP oracle (Floyd–Warshall).
//!
//! The BFS oracle in [`super::bfs`] is itself used to judge the distributed
//! algorithms; this `O(n³)` dynamic program shares no code with it, so the
//! two can cross-validate each other in tests. Use the BFS oracle for
//! anything performance-sensitive.

use crate::distance::DistanceMatrix;
use crate::graph::Graph;

/// All-pairs hop distances by the Floyd–Warshall recurrence.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference};
///
/// let g = generators::cycle(7);
/// assert_eq!(reference::floyd_warshall(&g), reference::apsp(&g));
/// ```
pub fn floyd_warshall(g: &Graph) -> DistanceMatrix {
    let n = g.num_nodes();
    let mut d = DistanceMatrix::new(n);
    for (u, v) in g.edges() {
        d.set(u, v, 1);
        d.set(v, u, 1);
    }
    for w in 0..n as u32 {
        for u in 0..n as u32 {
            let Some(duw) = d.get(u, w) else { continue };
            for v in 0..n as u32 {
                let Some(dwv) = d.get(w, v) else { continue };
                let via = duw + dwv;
                if d.get(u, v).is_none_or(|cur| via < cur) {
                    d.set(u, v, via);
                }
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::reference::apsp;

    #[test]
    fn agrees_with_the_bfs_oracle_on_a_zoo() {
        for g in [
            generators::path(9),
            generators::cycle(8),
            generators::grid(3, 4),
            generators::complete(6),
            generators::star(7),
            generators::barbell(4, 3),
            generators::hypercube(3),
        ] {
            assert_eq!(floyd_warshall(&g), apsp(&g));
        }
    }

    #[test]
    fn agrees_on_random_graphs_including_disconnected() {
        for seed in 0..8 {
            let g = generators::erdos_renyi(18, 0.12, seed); // may be disconnected
            assert_eq!(floyd_warshall(&g), apsp(&g), "seed={seed}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(
            floyd_warshall(&crate::Graph::builder(0).build()).num_nodes(),
            0
        );
        let one = floyd_warshall(&crate::Graph::builder(1).build());
        assert_eq!(one.get(0, 0), Some(0));
    }
}

//! Breadth-first search and the oracles built directly on it.

use std::collections::VecDeque;

use crate::distance::{DistanceMatrix, INFINITY};
use crate::graph::Graph;

/// Hop distances from `source` to every node ([`INFINITY`] if unreachable).
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference};
///
/// let g = generators::path(4);
/// assert_eq!(reference::bfs(&g, 0), vec![0, 1, 2, 3]);
/// ```
///
/// # Panics
///
/// Panics if `source >= n`.
pub fn bfs(g: &Graph, source: u32) -> Vec<u32> {
    let n = g.num_nodes();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INFINITY; n];
    dist[source as usize] = 0;
    let mut queue = VecDeque::with_capacity(n);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == INFINITY {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The full all-pairs hop-distance table, via one BFS per node (`O(n·m)`).
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference};
///
/// let g = generators::cycle(6);
/// let d = reference::apsp(&g);
/// assert_eq!(d.get(0, 3), Some(3));
/// assert_eq!(d.get(1, 5), Some(2));
/// ```
pub fn apsp(g: &Graph) -> DistanceMatrix {
    let n = g.num_nodes();
    let mut matrix = DistanceMatrix::new(n);
    for v in 0..n as u32 {
        matrix.set_row(v, &bfs(g, v));
    }
    matrix
}

/// Distances between every node of `sources` and every node of the graph —
/// the centralized answer to the paper's S-SP problem.
///
/// Returns one distance row per source, in the order given.
///
/// # Panics
///
/// Panics if any source is `>= n`.
pub fn s_shortest_paths(g: &Graph, sources: &[u32]) -> Vec<Vec<u32>> {
    sources.iter().map(|&s| bfs(g, s)).collect()
}

/// True if the graph is connected (vacuously true for `n <= 1`).
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference, Graph};
///
/// assert!(reference::is_connected(&generators::star(5)));
/// assert!(!reference::is_connected(&Graph::builder(2).build()));
/// ```
pub fn is_connected(g: &Graph) -> bool {
    if g.num_nodes() <= 1 {
        return true;
    }
    bfs(g, 0).iter().all(|&d| d != INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_disconnected_graph_marks_unreachable() {
        let mut b = Graph::builder(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build();
        let d = bfs(&g, 0);
        assert_eq!(d, vec![0, 1, INFINITY, INFINITY]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn apsp_is_symmetric_on_undirected_graphs() {
        let g = generators::grid(3, 4);
        let d = apsp(&g);
        let n = g.num_nodes() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(d.get(u, v), d.get(v, u));
            }
        }
    }

    #[test]
    fn apsp_satisfies_triangle_inequality() {
        let g = generators::erdos_renyi_connected(30, 0.15, 42);
        let d = apsp(&g);
        let n = g.num_nodes() as u32;
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    let (duv, duw, dwv) = (
                        d.get(u, v).unwrap(),
                        d.get(u, w).unwrap(),
                        d.get(w, v).unwrap(),
                    );
                    assert!(duv <= duw + dwv);
                }
            }
        }
    }

    #[test]
    fn s_shortest_paths_matches_apsp_rows() {
        let g = generators::grid(3, 3);
        let full = apsp(&g);
        let sources = [0u32, 4, 8];
        let rows = s_shortest_paths(&g, &sources);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(rows[i], full.row(s));
        }
    }

    #[test]
    fn singleton_is_connected() {
        let g = Graph::builder(1).build();
        assert!(is_connected(&g));
    }
}

//! Eccentricity-derived graph metrics (Definitions 3 and 4 of the paper).

use crate::distance::INFINITY;
use crate::graph::Graph;
use crate::reference::bfs::bfs;

/// The eccentricity of `v`: `max_u d(v, u)`, or `None` if the graph is
/// disconnected (some node unreachable from `v`).
///
/// # Panics
///
/// Panics if `v >= n` or the graph is empty.
pub fn eccentricity(g: &Graph, v: u32) -> Option<u32> {
    let max = *bfs(g, v).iter().max().expect("nonempty graph");
    if max == INFINITY {
        None
    } else {
        Some(max)
    }
}

/// Every node's eccentricity, or `None` if the graph is disconnected or
/// empty.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference};
///
/// let g = generators::path(4);
/// assert_eq!(reference::eccentricities(&g), Some(vec![3, 2, 2, 3]));
/// ```
pub fn eccentricities(g: &Graph) -> Option<Vec<u32>> {
    (0..g.num_nodes() as u32)
        .map(|v| eccentricity(g, v))
        .collect()
}

/// The diameter `max_{u,v} d(u, v)`, or `None` if disconnected or empty.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference};
///
/// assert_eq!(reference::diameter(&generators::cycle(10)), Some(5));
/// ```
pub fn diameter(g: &Graph) -> Option<u32> {
    eccentricities(g).map(|e| e.into_iter().max().unwrap_or(0))
}

/// The radius `min_v ecc(v)`, or `None` if disconnected or empty.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference};
///
/// assert_eq!(reference::radius(&generators::star(9)), Some(1));
/// ```
pub fn radius(g: &Graph) -> Option<u32> {
    eccentricities(g).map(|e| e.into_iter().min().unwrap_or(0))
}

/// The center: all nodes whose eccentricity equals the radius (Definition 4).
///
/// Returns `None` if the graph is disconnected or empty.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference};
///
/// assert_eq!(reference::center(&generators::path(5)), Some(vec![2]));
/// ```
pub fn center(g: &Graph) -> Option<Vec<u32>> {
    let ecc = eccentricities(g)?;
    let rad = *ecc.iter().min()?;
    Some(
        ecc.iter()
            .enumerate()
            .filter(|(_, &e)| e == rad)
            .map(|(v, _)| v as u32)
            .collect(),
    )
}

/// The peripheral vertices: all nodes whose eccentricity equals the diameter
/// (Definition 4). Returns `None` if the graph is disconnected or empty.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference};
///
/// assert_eq!(reference::peripheral_vertices(&generators::path(5)), Some(vec![0, 4]));
/// ```
pub fn peripheral_vertices(g: &Graph) -> Option<Vec<u32>> {
    let ecc = eccentricities(g)?;
    let diam = *ecc.iter().max()?;
    Some(
        ecc.iter()
            .enumerate()
            .filter(|(_, &e)| e == diam)
            .map(|(v, _)| v as u32)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_metrics() {
        let g = generators::path(7);
        assert_eq!(diameter(&g), Some(6));
        assert_eq!(radius(&g), Some(3));
        assert_eq!(center(&g), Some(vec![3]));
        assert_eq!(peripheral_vertices(&g), Some(vec![0, 6]));
    }

    #[test]
    fn even_path_has_two_centers() {
        let g = generators::path(6);
        assert_eq!(center(&g), Some(vec![2, 3]));
    }

    #[test]
    fn complete_graph_everyone_is_center_and_peripheral() {
        let g = generators::complete(5);
        assert_eq!(diameter(&g), Some(1));
        assert_eq!(radius(&g), Some(1));
        assert_eq!(center(&g), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(peripheral_vertices(&g), Some(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn disconnected_yields_none() {
        let g = Graph::builder(3).build();
        assert_eq!(diameter(&g), None);
        assert_eq!(radius(&g), None);
        assert_eq!(center(&g), None);
        assert_eq!(peripheral_vertices(&g), None);
    }

    #[test]
    fn eccentricity_bounds_diameter_both_ways() {
        // Fact 1 of the paper: ecc(u) <= D <= 2·ecc(u) for every u.
        for seed in 0..5 {
            let g = generators::erdos_renyi_connected(25, 0.12, seed);
            let d = diameter(&g).unwrap();
            for v in 0..g.num_nodes() as u32 {
                let e = eccentricity(&g, v).unwrap();
                assert!(e <= d && d <= 2 * e, "seed={seed} v={v}");
            }
        }
    }

    #[test]
    fn singleton_graph() {
        let g = Graph::builder(1).build();
        assert_eq!(diameter(&g), Some(0));
        assert_eq!(radius(&g), Some(0));
        assert_eq!(center(&g), Some(vec![0]));
    }
}

//! Girth oracle and tree detection.

use std::collections::VecDeque;

use crate::distance::INFINITY;
use crate::graph::Graph;

/// True if the graph is a forest with exactly one component covering all
/// nodes — i.e. a tree. The empty graph is not a tree; a single node is.
///
/// This is the centralized counterpart of the paper's Claim 1.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference};
///
/// assert!(reference::is_tree(&generators::star(6)));
/// assert!(!reference::is_tree(&generators::cycle(6)));
/// ```
pub fn is_tree(g: &Graph) -> bool {
    let n = g.num_nodes();
    n > 0 && g.num_edges() == n - 1 && crate::reference::is_connected(g)
}

/// The girth: the length of a shortest cycle, or `None` if the graph is a
/// forest (the paper defines forest girth as infinity).
///
/// Runs one truncated BFS per node; from a root on a minimum cycle the first
/// non-tree edge encountered closes that cycle exactly, and no candidate can
/// undercut the girth, so the minimum over all roots is exact (the argument
/// behind the paper's Lemma 7).
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, reference};
///
/// assert_eq!(reference::girth(&generators::cycle(7)), Some(7));
/// assert_eq!(reference::girth(&generators::complete(4)), Some(3));
/// assert_eq!(reference::girth(&generators::path(5)), None);
/// ```
pub fn girth(g: &Graph) -> Option<u32> {
    let n = g.num_nodes();
    let mut best: u32 = INFINITY;
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    for root in 0..n as u32 {
        dist.fill(INFINITY);
        parent.fill(u32::MAX);
        dist[root as usize] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            // Once 2·d(u) >= best no shorter cycle can be found from this root.
            if best != INFINITY && 2 * du >= best {
                break;
            }
            for &v in g.neighbors(u) {
                if dist[v as usize] == INFINITY {
                    dist[v as usize] = du + 1;
                    parent[v as usize] = u;
                    queue.push_back(v);
                } else if parent[u as usize] != v && parent[v as usize] != u {
                    // Non-tree edge: closes a cycle through the deepest
                    // common ancestor of u and v, of length at most
                    // d(u) + d(v) + 1.
                    best = best.min(du + dist[v as usize] + 1);
                }
            }
        }
    }
    if best == INFINITY {
        None
    } else {
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycles_have_their_length_as_girth() {
        for k in 3..12 {
            assert_eq!(girth(&generators::cycle(k)), Some(k as u32));
        }
    }

    #[test]
    fn trees_have_no_girth() {
        assert_eq!(girth(&generators::path(10)), None);
        assert_eq!(girth(&generators::balanced_tree(2, 4)), None);
        assert_eq!(girth(&generators::star(8)), None);
    }

    #[test]
    fn complete_and_bipartite_girths() {
        assert_eq!(girth(&generators::complete(5)), Some(3));
        // Grid graphs are bipartite with 4-cycles.
        assert_eq!(girth(&generators::grid(3, 3)), Some(4));
        // Hypercubes have girth 4.
        assert_eq!(girth(&generators::hypercube(3)), Some(4));
    }

    #[test]
    fn lollipop_girth_is_cycle_length() {
        let g = generators::lollipop(6, 10);
        assert_eq!(girth(&g), Some(6));
    }

    #[test]
    fn two_triangles_sharing_a_node() {
        let mut b = Graph::builder(5);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)] {
            b.add_edge(u, v).unwrap();
        }
        assert_eq!(girth(&b.build()), Some(3));
    }

    #[test]
    fn is_tree_cases() {
        assert!(is_tree(&generators::path(1)));
        assert!(is_tree(&generators::balanced_tree(3, 3)));
        assert!(!is_tree(&generators::cycle(4)));
        // Disconnected forest is not a tree.
        let g = Graph::builder(2).build();
        assert!(!is_tree(&g));
    }

    #[test]
    fn girth_matches_brute_force_on_small_random_graphs() {
        // Brute force: shortest cycle through each edge via BFS in G - e.
        for seed in 0..8 {
            let g = generators::erdos_renyi_connected(14, 0.2, seed);
            let fast = girth(&g);
            let mut brute = INFINITY;
            for (u, v) in g.edges() {
                // BFS from u to v avoiding the direct edge (u, v).
                let mut dist = vec![INFINITY; g.num_nodes()];
                dist[u as usize] = 0;
                let mut q = VecDeque::new();
                q.push_back(u);
                while let Some(x) = q.pop_front() {
                    for &y in g.neighbors(x) {
                        if (x, y) == (u, v) || (x, y) == (v, u) {
                            continue;
                        }
                        if dist[y as usize] == INFINITY {
                            dist[y as usize] = dist[x as usize] + 1;
                            q.push_back(y);
                        }
                    }
                }
                if dist[v as usize] != INFINITY {
                    brute = brute.min(dist[v as usize] + 1);
                }
            }
            let brute = if brute == INFINITY { None } else { Some(brute) };
            assert_eq!(fast, brute, "seed={seed}");
        }
    }
}

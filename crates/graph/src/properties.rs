//! Structural graph statistics and predicates.
//!
//! Used by the benchmark harness to characterize workloads and by tests to
//! validate generators.

use crate::graph::Graph;
use crate::reference::bfs;

/// Summary statistics of a graph's degree sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
}

/// Computes min/max/mean degree.
///
/// # Panics
///
/// Panics on an empty graph.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, properties};
///
/// let s = properties::degree_stats(&generators::star(5));
/// assert_eq!((s.min, s.max), (1, 4));
/// assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
/// ```
pub fn degree_stats(g: &Graph) -> DegreeStats {
    assert!(g.num_nodes() > 0, "degree stats of an empty graph");
    let degrees: Vec<usize> = (0..g.num_nodes() as u32).map(|v| g.degree(v)).collect();
    DegreeStats {
        min: *degrees.iter().min().expect("nonempty"),
        max: *degrees.iter().max().expect("nonempty"),
        mean: 2.0 * g.num_edges() as f64 / g.num_nodes() as f64,
    }
}

/// Edge density `m / (n·(n-1)/2)`; 0 for graphs with fewer than two nodes.
pub fn density(g: &Graph) -> f64 {
    let n = g.num_nodes();
    if n < 2 {
        return 0.0;
    }
    g.num_edges() as f64 / (n as f64 * (n as f64 - 1.0) / 2.0)
}

/// The connected components, as sorted vectors of node ids, sorted by
/// smallest member.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{properties, Graph};
///
/// # fn main() -> Result<(), dapsp_graph::GraphError> {
/// let mut b = Graph::builder(5);
/// b.add_edge(0, 1)?;
/// b.add_edge(3, 4)?;
/// let comps = properties::connected_components(&b.build());
/// assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
/// # Ok(())
/// # }
/// ```
pub fn connected_components(g: &Graph) -> Vec<Vec<u32>> {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n as u32 {
        if seen[start as usize] {
            continue;
        }
        let dist = bfs(g, start);
        let mut comp: Vec<u32> = (0..n as u32)
            .filter(|&v| dist[v as usize] != crate::INFINITY)
            .collect();
        for &v in &comp {
            seen[v as usize] = true;
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

/// True if the graph is bipartite (2-colorable). Vacuously true when
/// empty.
///
/// # Examples
///
/// ```
/// use dapsp_graph::{generators, properties};
///
/// assert!(properties::is_bipartite(&generators::grid(3, 4)));
/// assert!(!properties::is_bipartite(&generators::cycle(5)));
/// ```
pub fn is_bipartite(g: &Graph) -> bool {
    let n = g.num_nodes();
    let mut color = vec![u8::MAX; n];
    for start in 0..n as u32 {
        if color[start as usize] != u8::MAX {
            continue;
        }
        color[start as usize] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if color[v as usize] == u8::MAX {
                    color[v as usize] = 1 - color[u as usize];
                    queue.push_back(v);
                } else if color[v as usize] == color[u as usize] {
                    return false;
                }
            }
        }
    }
    true
}

/// The full degree histogram: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max = (0..g.num_nodes() as u32)
        .map(|v| g.degree(v))
        .max()
        .unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in 0..g.num_nodes() as u32 {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_stats_on_regular_graphs() {
        let s = degree_stats(&generators::cycle(10));
        assert_eq!((s.min, s.max), (2, 2));
        assert!((s.mean - 2.0).abs() < 1e-12);
        let s = degree_stats(&generators::complete(7));
        assert_eq!((s.min, s.max), (6, 6));
    }

    #[test]
    fn density_extremes() {
        assert!((density(&generators::complete(6)) - 1.0).abs() < 1e-12);
        let path_density = density(&generators::path(6));
        assert!(path_density < 0.34 && path_density > 0.3);
        assert_eq!(density(&Graph::builder(1).build()), 0.0);
    }

    #[test]
    fn components_of_connected_graph_is_single() {
        let g = generators::grid(3, 3);
        assert_eq!(connected_components(&g).len(), 1);
    }

    #[test]
    fn bipartite_classification() {
        assert!(is_bipartite(&generators::path(9)));
        assert!(is_bipartite(&generators::hypercube(4)));
        assert!(is_bipartite(&generators::cycle(8)));
        assert!(!is_bipartite(&generators::cycle(9)));
        assert!(!is_bipartite(&generators::complete(3)));
        assert!(is_bipartite(&generators::complete_bipartite(4, 5)));
        assert!(is_bipartite(&Graph::builder(0).build()));
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = generators::barabasi_albert(40, 2, 3);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 40);
        // Preferential attachment: the tail is nonempty well above the mean.
        assert!(hist.len() > 5);
    }

    use crate::Graph;
}

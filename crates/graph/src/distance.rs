//! The all-pairs hop-distance table.

/// Sentinel meaning "unreachable" in a [`DistanceMatrix`].
pub const INFINITY: u32 = u32::MAX;

/// A dense `n × n` table of hop distances.
///
/// Produced both by the centralized oracle
/// ([`reference::apsp`](crate::reference::apsp)) and by the distributed
/// algorithms, so results can be compared directly. Unreachable pairs hold
/// [`INFINITY`] internally and read back as `None`.
///
/// # Examples
///
/// ```
/// use dapsp_graph::DistanceMatrix;
///
/// let mut d = DistanceMatrix::new(2);
/// d.set(0, 1, 5);
/// assert_eq!(d.get(0, 1), Some(5));
/// assert_eq!(d.get(1, 0), None); // not set: the matrix is not auto-symmetric
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<u32>,
}

impl DistanceMatrix {
    /// Creates an `n × n` matrix with every off-diagonal entry unreachable
    /// and the diagonal set to 0.
    pub fn new(n: usize) -> Self {
        let mut data = vec![INFINITY; n * n];
        for v in 0..n {
            data[v * n + v] = 0;
        }
        DistanceMatrix { n, data }
    }

    /// The matrix dimension `n`.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The distance from `u` to `v`, or `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`.
    pub fn get(&self, u: u32, v: u32) -> Option<u32> {
        let d = self.data[u as usize * self.n + v as usize];
        if d == INFINITY {
            None
        } else {
            Some(d)
        }
    }

    /// Sets the distance from `u` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`.
    pub fn set(&mut self, u: u32, v: u32, d: u32) {
        self.data[u as usize * self.n + v as usize] = d;
    }

    /// The row of distances from `u` (raw, with [`INFINITY`] sentinels).
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn row(&self, u: u32) -> &[u32] {
        &self.data[u as usize * self.n..(u as usize + 1) * self.n]
    }

    /// Overwrites the row of `u` with `dists` (using [`INFINITY`] sentinels).
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `dists.len() != n`.
    pub fn set_row(&mut self, u: u32, dists: &[u32]) {
        assert_eq!(dists.len(), self.n, "row length must equal n");
        self.data[u as usize * self.n..(u as usize + 1) * self.n].copy_from_slice(dists);
    }

    /// The eccentricity of `u`: its maximum distance to any node, or `None`
    /// if some node is unreachable from `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn eccentricity(&self, u: u32) -> Option<u32> {
        let row = self.row(u);
        let max = row.iter().copied().max().unwrap_or(0);
        if max == INFINITY {
            None
        } else {
            Some(max)
        }
    }

    /// True if every entry is finite (the underlying graph is connected).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|&d| d != INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_has_zero_diagonal_and_infinite_rest() {
        let d = DistanceMatrix::new(3);
        for v in 0..3 {
            assert_eq!(d.get(v, v), Some(0));
        }
        assert_eq!(d.get(0, 1), None);
        assert!(!d.is_finite());
    }

    #[test]
    fn set_row_and_eccentricity() {
        let mut d = DistanceMatrix::new(3);
        d.set_row(0, &[0, 1, 2]);
        assert_eq!(d.eccentricity(0), Some(2));
        assert_eq!(d.eccentricity(1), None); // row 1 still has infinities
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn set_row_rejects_wrong_length() {
        let mut d = DistanceMatrix::new(3);
        d.set_row(0, &[0, 1]);
    }

    #[test]
    fn zero_sized_matrix() {
        let d = DistanceMatrix::new(0);
        assert_eq!(d.num_nodes(), 0);
        assert!(d.is_finite());
    }
}

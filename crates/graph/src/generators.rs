//! Graph families used as experiment workloads.
//!
//! Deterministic families are pure functions of their parameters; random
//! families take an explicit `seed` and are reproducible across runs and
//! platforms (seeded ChaCha stream).
//!
//! Several families exist to *control one parameter while holding others
//! fixed*, which the paper's bounds require:
//!
//! * [`double_broom`] — `n` nodes with diameter **exactly** `d` (used to
//!   sweep `D` in the `O(n/D + D)` approximation experiments),
//! * [`tadpole`] — `n` nodes with girth exactly `g`,
//! * [`barbell`] — low diameter with two dense clusters.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::graph::Graph;

/// The path `0 – 1 – … – n-1`. Diameter `n-1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path needs at least one node");
    let mut b = Graph::builder(n);
    for v in 1..n as u32 {
        b.add_edge(v - 1, v).expect("valid edge");
    }
    b.build()
}

/// The cycle on `n >= 3` nodes. Diameter `⌊n/2⌋`, girth `n`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least three nodes");
    let mut b = Graph::builder(n);
    for v in 0..n as u32 {
        b.add_edge(v, (v + 1) % n as u32).expect("valid edge");
    }
    b.build()
}

/// The star: node 0 adjacent to nodes `1..n`. Diameter 2 (for `n >= 3`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n > 0, "star needs at least one node");
    let mut b = Graph::builder(n);
    for v in 1..n as u32 {
        b.add_edge(0, v).expect("valid edge");
    }
    b.build()
}

/// The complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "complete graph needs at least one node");
    let mut b = Graph::builder(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(u, v).expect("valid edge");
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`: nodes `0..a` on one side,
/// `a..a+b` on the other.
///
/// # Panics
///
/// Panics if `a == 0` or `b == 0`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(a > 0 && b > 0, "both sides must be nonempty");
    let mut builder = Graph::builder(a + b);
    for u in 0..a as u32 {
        for v in a as u32..(a + b) as u32 {
            builder.add_edge(u, v).expect("valid edge");
        }
    }
    builder.build()
}

/// The `rows × cols` grid. Diameter `rows + cols - 2`.
///
/// # Panics
///
/// Panics if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut b = Graph::builder(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1)).expect("valid edge");
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c)).expect("valid edge");
            }
        }
    }
    b.build()
}

/// The `rows × cols` torus (grid with wraparound).
///
/// # Panics
///
/// Panics if either dimension is `< 3` (smaller tori collapse to
/// multi-edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus dimensions must be >= 3");
    let mut b = Graph::builder(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols))
                .expect("valid edge");
            b.add_edge(id(r, c), id((r + 1) % rows, c))
                .expect("valid edge");
        }
    }
    b.build()
}

/// The `dim`-dimensional hypercube on `2^dim` nodes. Diameter `dim`.
///
/// # Panics
///
/// Panics if `dim == 0` or `dim > 20`.
pub fn hypercube(dim: u32) -> Graph {
    assert!(
        dim > 0 && dim <= 20,
        "hypercube dimension must be in 1..=20"
    );
    let n = 1usize << dim;
    let mut b = Graph::builder(n);
    for v in 0..n as u32 {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge(v, u).expect("valid edge");
            }
        }
    }
    b.build()
}

/// A complete `arity`-ary tree of the given `depth` (depth 0 is a single
/// node).
///
/// # Panics
///
/// Panics if `arity == 0`.
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    assert!(arity > 0, "arity must be positive");
    // Count nodes: 1 + arity + arity^2 + ... + arity^depth.
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= arity;
        n += level;
    }
    let mut b = Graph::builder(n);
    // Children of node v are arity*v + 1 ..= arity*v + arity.
    for v in 0..n {
        for c in 1..=arity {
            let child = arity * v + c;
            if child < n {
                b.add_edge(v as u32, child as u32).expect("valid edge");
            }
        }
    }
    b.build()
}

/// A uniform random-attachment tree: node `i > 0` attaches to a uniformly
/// random earlier node. Always connected.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "tree needs at least one node");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = Graph::builder(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v) as u32;
        b.add_edge(parent, v as u32).expect("valid edge");
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each pair is an edge independently with
/// probability `p`. May be disconnected.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "graph needs at least one node");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = Graph::builder(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                b.add_edge(u, v).expect("valid edge");
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` forced connected by unioning a seeded random
/// spanning tree. For `p` well above `ln n / n` the tree edges are a
/// vanishing fraction and the model is indistinguishable from conditioned
/// `G(n, p)` for our purposes.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn erdos_renyi_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "graph needs at least one node");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = Graph::builder(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v) as u32;
        b.add_edge(parent, v as u32).expect("valid edge");
    }
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                b.add_edge(u, v).expect("valid edge");
            }
        }
    }
    b.build()
}

/// A tree on `n` nodes with diameter **exactly** `d`: a path `v_0 … v_d`
/// with the remaining `n - d - 1` nodes attached as leaves alternately to
/// `v_1` and `v_{d-1}`.
///
/// This is the workhorse for sweeping `D` at fixed `n` in the
/// `O(n/D + D)` experiments.
///
/// # Panics
///
/// Panics unless `2 <= d <= n - 1`.
pub fn double_broom(n: usize, d: usize) -> Graph {
    assert!(d >= 2, "double_broom needs diameter >= 2");
    assert!(d < n, "diameter {d} impossible with {n} nodes");
    let mut b = Graph::builder(n);
    for v in 1..=d as u32 {
        b.add_edge(v - 1, v).expect("valid edge");
    }
    for (i, leaf) in ((d + 1) as u32..n as u32).enumerate() {
        let anchor = if i % 2 == 0 { 1 } else { d as u32 - 1 };
        b.add_edge(anchor, leaf).expect("valid edge");
    }
    b.build()
}

/// The tadpole (a.k.a. lollipop with a cycle head): a `g`-cycle with an
/// `(n - g)`-node path attached. Girth exactly `g`.
///
/// # Panics
///
/// Panics unless `3 <= g <= n`.
pub fn tadpole(g: usize, n: usize) -> Graph {
    assert!(g >= 3, "girth must be at least 3");
    assert!(g <= n, "girth {g} impossible with {n} nodes");
    let mut b = Graph::builder(n);
    for v in 0..g as u32 {
        b.add_edge(v, (v + 1) % g as u32).expect("valid edge");
    }
    for v in g as u32..n as u32 {
        let prev = if v == g as u32 { 0 } else { v - 1 };
        b.add_edge(prev, v).expect("valid edge");
    }
    b.build()
}

/// A hairy cycle: a `g`-cycle with the remaining `n - g` nodes attached as
/// pendant leaves, distributed round-robin over the cycle. Girth exactly
/// `g`, diameter ≈ `g/2 + 2` — the family where the girth approximation's
/// `O(n/g + D·log(D/g))` bound beats the exact `O(n)` computation.
///
/// # Panics
///
/// Panics unless `3 <= g <= n`.
pub fn hairy_cycle(g: usize, n: usize) -> Graph {
    assert!(g >= 3, "girth must be at least 3");
    assert!(g <= n, "girth {g} impossible with {n} nodes");
    let mut b = Graph::builder(n);
    for v in 0..g as u32 {
        b.add_edge(v, (v + 1) % g as u32).expect("valid edge");
    }
    for (i, leaf) in (g as u32..n as u32).enumerate() {
        b.add_edge((i % g) as u32, leaf).expect("valid edge");
    }
    b.build()
}

/// A lollipop: a `head`-node cycle plus a `tail`-node path. Total
/// `head + tail` nodes; equivalent to [`tadpole`]`(head, head + tail)`.
///
/// # Panics
///
/// Panics if `head < 3`.
pub fn lollipop(head: usize, tail: usize) -> Graph {
    tadpole(head, head + tail)
}

/// A barbell: two `k`-cliques joined by a path with `bridge` intermediate
/// nodes. Total `2k + bridge` nodes.
///
/// # Panics
///
/// Panics if `k < 1`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 1, "cliques need at least one node");
    let n = 2 * k + bridge;
    let mut b = Graph::builder(n);
    let clique = |b: &mut crate::graph::GraphBuilder, lo: u32, hi: u32| {
        for u in lo..hi {
            for v in (u + 1)..hi {
                b.add_edge(u, v).expect("valid edge");
            }
        }
    };
    clique(&mut b, 0, k as u32);
    clique(&mut b, (k + bridge) as u32, n as u32);
    // The bridge path from node k-1 through bridge nodes to node k+bridge.
    let mut prev = (k - 1) as u32;
    for v in k as u32..(k + bridge + 1) as u32 {
        if (v as usize) < n {
            b.add_edge(prev, v).expect("valid edge");
            prev = v;
        }
    }
    b.build()
}

/// A caterpillar: a `spine`-node path with `legs` leaves on every spine
/// node. Total `spine · (1 + legs)` nodes.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "caterpillar needs a spine");
    let n = spine * (1 + legs);
    let mut b = Graph::builder(n);
    for s in 1..spine as u32 {
        b.add_edge(s - 1, s).expect("valid edge");
    }
    for s in 0..spine as u32 {
        for l in 0..legs as u32 {
            let leaf = spine as u32 + s * legs as u32 + l;
            b.add_edge(s, leaf).expect("valid edge");
        }
    }
    b.build()
}

/// A Watts–Strogatz small-world graph: a ring lattice where each node
/// connects to its `k` nearest neighbors on each side, with every lattice
/// edge rewired to a random endpoint with probability `beta`. Connectivity
/// is restored (if rewiring disconnected the ring) by adding the plain
/// ring back is *not* done — instead pass moderate `beta`; the function
/// keeps the ring edges `(v, v+1)` fixed so the result is always
/// connected.
///
/// # Panics
///
/// Panics unless `n >= 4`, `1 <= k < n/2`, and `beta` is a probability.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(n >= 4, "small-world graphs need n >= 4");
    assert!(k >= 1 && 2 * k < n, "need 1 <= k < n/2");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = Graph::builder(n);
    for v in 0..n {
        for d in 1..=k {
            let u = (v + d) % n;
            // The immediate ring (d == 1) stays fixed for connectivity;
            // farther lattice edges may be rewired.
            if d > 1 && rng.gen_bool(beta) {
                let mut w = rng.gen_range(0..n);
                let mut tries = 0;
                while (w == v || b.has_edge(v as u32, w as u32)) && tries < 16 {
                    w = rng.gen_range(0..n);
                    tries += 1;
                }
                if w != v {
                    b.add_edge(v as u32, w as u32).expect("valid edge");
                    continue;
                }
            }
            b.add_edge(v as u32, u as u32).expect("valid edge");
        }
    }
    b.build()
}

/// A Barabási–Albert preferential-attachment graph: nodes arrive one at a
/// time and attach `m` edges to existing nodes chosen proportionally to
/// their degree. Produces the heavy-tailed degree distributions typical of
/// social networks; always connected.
///
/// # Panics
///
/// Panics unless `1 <= m < n`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "each newcomer needs at least one edge");
    assert!(m < n, "m must be below n");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = Graph::builder(n);
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<u32> = Vec::new();
    // Seed clique on the first m+1 nodes.
    let core = (m + 1).min(n);
    for u in 0..core as u32 {
        for v in (u + 1)..core as u32 {
            b.add_edge(u, v).expect("valid edge");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in core..n {
        let mut chosen = std::collections::BTreeSet::new();
        let mut guard = 0;
        while chosen.len() < m && guard < 64 * m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            chosen.insert(t);
            guard += 1;
        }
        // Fallback for pathological sampling: attach to lowest-degree ids.
        let mut fill = 0u32;
        while chosen.len() < m {
            if (fill as usize) < v && !chosen.contains(&fill) {
                chosen.insert(fill);
            }
            fill += 1;
        }
        for &t in &chosen {
            b.add_edge(v as u32, t).expect("valid edge");
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(reference::diameter(&g), Some(4));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(reference::diameter(&g), Some(4));
        assert_eq!(reference::girth(&g), Some(8));
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 5);
        assert_eq!(reference::diameter(&g), Some(2));
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(reference::diameter(&g), Some(1));
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(reference::diameter(&g), Some(2));
        assert_eq!(reference::girth(&g), Some(4));
    }

    #[test]
    fn grid_and_torus_shapes() {
        let g = grid(4, 5);
        assert_eq!(g.num_nodes(), 20);
        assert_eq!(g.num_edges(), 4 * 4 + 3 * 5);
        assert_eq!(reference::diameter(&g), Some(7));
        let t = torus(4, 4);
        assert_eq!(t.num_edges(), 2 * 16);
        assert_eq!(reference::diameter(&t), Some(4));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_edges(), 32);
        assert_eq!(reference::diameter(&g), Some(4));
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.num_nodes(), 15);
        assert!(reference::is_tree(&g));
        assert_eq!(reference::diameter(&g), Some(6));
        // depth 0 is a single node
        assert_eq!(balanced_tree(3, 0).num_nodes(), 1);
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let g = random_tree(40, seed);
            assert!(reference::is_tree(&g), "seed={seed}");
        }
    }

    #[test]
    fn random_generators_are_deterministic_in_seed() {
        assert_eq!(erdos_renyi(30, 0.2, 9), erdos_renyi(30, 0.2, 9));
        assert_ne!(erdos_renyi(30, 0.2, 9), erdos_renyi(30, 0.2, 10));
        assert_eq!(random_tree(30, 4), random_tree(30, 4));
    }

    #[test]
    fn erdos_renyi_connected_is_connected() {
        for seed in 0..5 {
            assert!(reference::is_connected(&erdos_renyi_connected(
                50, 0.02, seed
            )));
        }
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let g0 = erdos_renyi(10, 0.0, 1);
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(10, 1.0, 1);
        assert_eq!(g1.num_edges(), 45);
    }

    #[test]
    fn double_broom_has_exact_diameter() {
        for (n, d) in [(20, 2), (20, 5), (20, 10), (20, 19), (7, 3)] {
            let g = double_broom(n, d);
            assert_eq!(g.num_nodes(), n);
            assert_eq!(reference::diameter(&g), Some(d as u32), "n={n} d={d}");
            assert!(reference::is_tree(&g));
        }
    }

    #[test]
    fn tadpole_has_exact_girth() {
        for (g_target, n) in [(3, 10), (5, 12), (7, 7), (4, 20)] {
            let g = tadpole(g_target, n);
            assert_eq!(g.num_nodes(), n);
            assert_eq!(reference::girth(&g), Some(g_target as u32));
        }
    }

    #[test]
    fn watts_strogatz_shape() {
        for seed in 0..4 {
            let g = watts_strogatz(40, 3, 0.2, seed);
            assert_eq!(g.num_nodes(), 40);
            assert!(reference::is_connected(&g), "seed={seed}");
            // Ring edges are preserved.
            for v in 0..40u32 {
                assert!(g.has_edge(v, (v + 1) % 40));
            }
        }
        assert_eq!(watts_strogatz(30, 2, 0.3, 5), watts_strogatz(30, 2, 0.3, 5));
    }

    #[test]
    fn barabasi_albert_shape() {
        for seed in 0..4 {
            let g = barabasi_albert(60, 2, seed);
            assert_eq!(g.num_nodes(), 60);
            assert!(reference::is_connected(&g), "seed={seed}");
            // Preferential attachment produces a hub: max degree well above m.
            let max_deg = (0..60u32).map(|v| g.degree(v)).max().unwrap();
            assert!(max_deg >= 6, "max degree {max_deg}");
            // Every latecomer has degree >= m.
            for v in 3..60u32 {
                assert!(g.degree(v) >= 2);
            }
        }
        assert_eq!(barabasi_albert(40, 2, 9), barabasi_albert(40, 2, 9));
    }

    #[test]
    fn hairy_cycle_shape() {
        for (g_target, n) in [(6, 30), (8, 8), (12, 100)] {
            let g = hairy_cycle(g_target, n);
            assert_eq!(g.num_nodes(), n);
            assert_eq!(reference::girth(&g), Some(g_target as u32));
            // Diameter stays near g/2 (+2 for the two pendant hops).
            let d = reference::diameter(&g).unwrap() as usize;
            assert!(d <= g_target / 2 + 2, "d={d}");
        }
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 3);
        assert_eq!(g.num_nodes(), 11);
        assert!(reference::is_connected(&g));
        // clique – 4 bridge hops – clique, plus one hop inside each clique
        assert_eq!(reference::diameter(&g), Some(6));
        assert_eq!(reference::girth(&g), Some(3));
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.num_nodes(), 12);
        assert!(reference::is_tree(&g));
        assert_eq!(reference::diameter(&g), Some(5));
    }
}

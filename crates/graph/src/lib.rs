//! Graph toolkit for the distributed-APSP reproduction.
//!
//! Provides the pieces the paper's algorithms and experiments stand on:
//!
//! * [`Graph`] — a simple undirected graph with a validating
//!   [`GraphBuilder`], convertible into a
//!   [`Topology`](dapsp_congest::Topology) for simulation,
//! * [`generators`] — deterministic and seeded-random graph families (paths,
//!   cycles, trees, grids, tori, hypercubes, Erdős–Rényi, brooms,
//!   lollipops, …) used as benchmark workloads,
//! * [`lowerbound`] — the communication-complexity hard families behind the
//!   paper's lower bounds (diameter 2-vs-3, the `(+,1)`-approximation gap
//!   family, the girth-3 2-BFS-hardness family) together with an analytic
//!   round-lower-bound certifier,
//! * [`reference`](mod@reference) — centralized oracle algorithms (BFS, APSP,
//!   eccentricities, diameter, radius, center, peripheral vertices, girth,
//!   domination checks) against which every distributed result is tested,
//! * [`DistanceMatrix`] — the `n × n` hop-distance table shared by oracles
//!   and distributed solvers.
//!
//! # Example
//!
//! ```
//! use dapsp_graph::{generators, reference};
//!
//! let g = generators::cycle(9);
//! assert_eq!(reference::diameter(&g), Some(4));
//! assert_eq!(reference::girth(&g), Some(9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distance;
mod graph;

pub mod enumerate;
pub mod generators;
pub mod io;
pub mod lowerbound;
pub mod properties;
pub mod reference;

pub use distance::{DistanceMatrix, INFINITY};
pub use graph::{Graph, GraphBuilder, GraphError};

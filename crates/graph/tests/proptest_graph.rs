//! Property tests for the graph toolkit: builder invariants, oracle
//! algebra, and the lower-bound family dichotomies.

use proptest::prelude::*;

use dapsp_graph::{generators, lowerbound, reference, Graph, INFINITY};

fn connected(n: usize, p: f64, seed: u64) -> Graph {
    generators::erdos_renyi_connected(n, p, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Builder output is always simple and symmetric.
    #[test]
    fn graphs_are_simple_and_symmetric(n in 2usize..40, p in 0.0f64..0.4, seed in any::<u64>()) {
        let g = generators::erdos_renyi(n, p, seed);
        for v in 0..n as u32 {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
            prop_assert!(!nbrs.contains(&v), "no self-loop");
            for &u in nbrs {
                prop_assert!(g.has_edge(u, v), "symmetric");
            }
        }
        prop_assert_eq!(g.edges().count(), g.num_edges());
    }

    /// APSP oracle: symmetry, identity, triangle inequality, and edge
    /// consistency (d differs by at most 1 across an edge).
    #[test]
    fn oracle_apsp_is_a_metric(n in 2usize..28, p in 0.02f64..0.3, seed in any::<u64>()) {
        let g = connected(n, p, seed);
        let d = reference::apsp(&g);
        for u in 0..n as u32 {
            prop_assert_eq!(d.get(u, u), Some(0));
            for v in 0..n as u32 {
                prop_assert_eq!(d.get(u, v), d.get(v, u));
            }
        }
        for (u, v) in g.edges() {
            prop_assert_eq!(d.get(u, v), Some(1));
            for w in 0..n as u32 {
                let (a, b) = (d.get(u, w).unwrap() as i64, d.get(v, w).unwrap() as i64);
                prop_assert!((a - b).abs() <= 1, "edge-consistency");
            }
        }
    }

    /// Eccentricity facts: rad <= D <= 2·rad and Fact 1 per node.
    #[test]
    fn radius_diameter_relations(n in 2usize..30, p in 0.02f64..0.3, seed in any::<u64>()) {
        let g = connected(n, p, seed);
        let d = reference::diameter(&g).unwrap();
        let r = reference::radius(&g).unwrap();
        prop_assert!(r <= d && d <= 2 * r);
        for e in reference::eccentricities(&g).unwrap() {
            prop_assert!(e <= d && d <= 2 * e);
        }
    }

    /// The girth oracle never reports a value below 3, and any reported
    /// value is witnessed by some closed walk: cross-check against the
    /// tree test.
    #[test]
    fn girth_consistency(n in 3usize..24, p in 0.0f64..0.3, seed in any::<u64>()) {
        let g = connected(n, p, seed);
        match reference::girth(&g) {
            None => prop_assert!(reference::is_tree(&g)),
            Some(girth) => {
                prop_assert!(girth >= 3);
                prop_assert!(!reference::is_tree(&g));
                prop_assert!(girth <= 2 * reference::diameter(&g).unwrap() + 1);
            }
        }
    }

    /// Multi-source distances agree with the per-source minimum.
    #[test]
    fn distance_to_set_is_min_over_sources(n in 2usize..24, seed in any::<u64>(), k in 1usize..5) {
        let g = connected(n, 0.15, seed);
        let sources: Vec<u32> = (0..k.min(n) as u32).collect();
        let multi = reference::distance_to_set(&g, &sources);
        let singles = reference::s_shortest_paths(&g, &sources);
        for v in 0..n {
            let want = singles.iter().map(|row| row[v]).min().unwrap();
            prop_assert_eq!(multi[v], want);
            prop_assert!(multi[v] != INFINITY);
        }
    }

    /// The 2-vs-3 dichotomy holds for arbitrary random inputs, and the
    /// certificate is consistent with the cut actually present.
    #[test]
    fn two_vs_three_dichotomy(k in 2usize..12, da in 0.0f64..0.6, db in 0.0f64..0.6, seed in any::<u64>()) {
        let alice = lowerbound::random_pair_set(k, da, seed);
        let bob = lowerbound::random_pair_set(k, db, seed.wrapping_add(1));
        let inst = lowerbound::two_vs_three(k, &alice, &bob);
        prop_assert_eq!(
            reference::diameter(&inst.graph),
            Some(inst.expected_diameter)
        );
        let in_alice = |x: u32| inst.alice_nodes.contains(&x);
        let crossing = inst.graph.edges().filter(|&(x, y)| in_alice(x) != in_alice(y)).count() as u64;
        prop_assert_eq!(crossing, inst.bound.cut_edges);
    }

    /// The diameter-gap family keeps its promised diameter at every scale.
    #[test]
    fn diameter_gap_family(k in 4usize..9, h in 1usize..5, intersecting in any::<bool>()) {
        let (alice, bob) = lowerbound::canonical_inputs(k, intersecting);
        let inst = lowerbound::diameter_gap(k, h, &alice, &bob);
        prop_assert_eq!(
            reference::diameter(&inst.graph),
            Some(inst.expected_diameter)
        );
    }
}

//! Exhaustive serve-layer conformance on every connected graph with at
//! most 7 nodes (996 instances): the published [`RouteTable`] must agree
//! with the Floyd–Warshall oracle pair by pair, and — the part no matrix
//! check covers — *walking* the next-hop pointers from every source must
//! actually arrive at every destination in exactly `hops(s, d)` steps.
//! A second sweep applies a deterministic churn plan to every graph and
//! holds the republished snapshot to the mutated-graph oracle.

use dapsp_congest::TopologyPlan;
use dapsp_graph::{enumerate, reference, Graph};
use dapsp_serve::{RouteService, RouteTable};

/// Walks next-hop pointers from `s` to `d` step by step (no trust in
/// `RouteTable::path`'s own bookkeeping) and checks arrival in exactly
/// `want` hops, with every prefix geodesic.
fn walk(table: &RouteTable, oracle: &dapsp_graph::DistanceMatrix, s: u32, d: u32, want: u32) {
    let mut cur = s;
    for step in 0..want {
        let hop = table
            .next_hop(cur, d)
            .unwrap_or_else(|| panic!("no hop at {cur} toward {d} (from {s}, step {step})"));
        // Each hop must make geodesic progress on the oracle metric.
        assert_eq!(
            oracle.get(hop, d),
            Some(want - step - 1),
            "hop {cur}->{hop} toward {d} is not on a shortest path"
        );
        cur = hop;
    }
    assert_eq!(cur, d, "walk from {s} ended at {cur}, not {d}");
    assert_eq!(
        table.next_hop(d, d),
        None,
        "arrived nodes must not keep forwarding"
    );
}

/// `table` answers exactly like the Floyd–Warshall oracle on `g`, for
/// distances, walks, and the derived metrics.
fn assert_conforms(table: &RouteTable, g: &Graph) {
    let n = g.num_nodes() as u32;
    let oracle = reference::floyd_warshall(g);
    for s in 0..n {
        for d in 0..n {
            let want = oracle.get(s, d);
            assert_eq!(table.dist(s, d), want, "d({s}, {d}) on {g:?}");
            match want {
                Some(h) => {
                    walk(table, &oracle, s, d, h);
                    let path = table.path(s, d).expect("reachable pair must have a path");
                    assert_eq!(path.len() as u32, h + 1);
                    assert_eq!(path[0], s);
                    assert_eq!(*path.last().unwrap(), d);
                }
                None => {
                    assert_eq!(table.next_hop(s, d), None);
                    assert_eq!(table.path(s, d), None);
                }
            }
        }
    }
    assert_eq!(
        table.diameter(),
        reference::diameter(g),
        "diameter on {g:?}"
    );
    assert_eq!(table.radius(), reference::radius(g), "radius on {g:?}");
    let centers = reference::center(g).unwrap_or_default();
    assert_eq!(table.centers(), &centers[..], "centers on {g:?}");
    assert_eq!(table.girth(), reference::girth(g), "girth on {g:?}");
    assert!(table.verify(), "published checksum must verify on {g:?}");
}

#[test]
fn every_small_graph_serves_the_oracle() {
    let mut count = 0;
    for n in 1..=7 {
        for g in enumerate::connected_graphs(n) {
            let service = RouteService::build(&g).unwrap();
            let table = service.handle().load();
            assert_eq!(table.epoch(), 0);
            assert!(
                table.certificate().is_some(),
                "epoch-0 snapshot must carry its termination certificate"
            );
            assert_conforms(&table, &g);
            count += 1;
        }
    }
    assert_eq!(count, 996, "the n<=7 connected census has 996 graphs");
}

/// A deterministic churn plan for `g`: remove its first edge, insert its
/// first non-edge (when one exists). Covers disconnections, shortcuts,
/// and girth changes across the whole census.
fn churn_plan(g: &Graph) -> TopologyPlan {
    let (u, v) = g.edges().next().expect("connected n>=2 graphs have edges");
    let mut plan = TopologyPlan::new().with_remove(1, u, v);
    let n = g.num_nodes() as u32;
    'outer: for a in 0..n {
        for b in (a + 1)..n {
            if !g.has_edge(a, b) {
                plan = plan.with_insert(2, a, b);
                break 'outer;
            }
        }
    }
    plan
}

#[test]
fn every_small_graph_republishes_the_mutated_oracle() {
    use dapsp_core::churned_graph;

    let mut republished = 0;
    for n in 2..=7 {
        for g in enumerate::connected_graphs(n) {
            let mut service = RouteService::build(&g).unwrap();
            let handle = service.handle();
            let plan = churn_plan(&g);
            let epoch0 = handle.load();
            service.apply(&plan).unwrap();
            let table = handle.load();
            assert_eq!(table.epoch(), 1);
            assert_conforms(&table, &churned_graph(&g, &plan).unwrap());
            // The retained pre-churn snapshot is still the old epoch,
            // still valid.
            assert_eq!(epoch0.epoch(), 0);
            assert_conforms(&epoch0, &g);
            republished += 1;
        }
    }
    assert_eq!(republished, 995, "the 2<=n<=7 connected census");
}

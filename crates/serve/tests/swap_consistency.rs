//! Concurrency stress for the snapshot-swap serving layer: reader
//! threads hammer queries while the background control plane republishes
//! the table repeatedly. Every loaded snapshot must be internally
//! consistent with exactly one epoch — checked three ways: the payload
//! checksum verifies, the answers match the *epoch's own* graph (the
//! churn schedule is deterministic, so each epoch has a closed-form
//! oracle), and observed epochs never go backwards on any one handle.
//!
//! `scripts/verify.sh` also runs this suite under `DAPSP_POOL_CHUNK=1`,
//! the forced work-stealing regime, so the pool executor's recomputes are
//! stressed in their most interleaved configuration.

use std::sync::atomic::{AtomicBool, Ordering};

use dapsp_congest::TopologyPlan;
use dapsp_graph::generators;
use dapsp_serve::{RouteService, ServeHandle};

const N: u32 = 12;
const REPUBLISHES: u64 = 8;
const READERS: usize = 4;

/// The deterministic churn schedule: odd epochs have the chord (0, 6)
/// inserted, even epochs are the plain 12-cycle. Each epoch's oracle is
/// closed-form either way.
fn plan_for(epoch: u64) -> TopologyPlan {
    if epoch % 2 == 1 {
        TopologyPlan::new().with_insert(1, 0, 6)
    } else {
        TopologyPlan::new().with_remove(1, 0, 6)
    }
}

/// Hop distance on the 12-cycle.
fn cycle_dist(s: u32, d: u32) -> u32 {
    let around = (s as i64 - d as i64).unsigned_abs() as u32;
    around.min(N - around)
}

/// Hop distance on the 12-cycle plus the (0, 6) chord.
fn chord_dist(s: u32, d: u32) -> u32 {
    cycle_dist(s, d)
        .min(cycle_dist(s, 0) + 1 + cycle_dist(6, d))
        .min(cycle_dist(s, 6) + 1 + cycle_dist(0, d))
}

/// The exact distance oracle for the graph of `epoch`.
fn oracle(epoch: u64, s: u32, d: u32) -> u32 {
    if epoch % 2 == 1 {
        chord_dist(s, d)
    } else {
        cycle_dist(s, d)
    }
}

/// One reader: load → verify → query until `done`. Returns (loads seen,
/// distinct epochs seen).
fn reader(handle: &ServeHandle, done: &AtomicBool) -> (u64, Vec<u64>) {
    let mut loads = 0u64;
    let mut epochs: Vec<u64> = Vec::new();
    let mut last_epoch = 0u64;
    while !done.load(Ordering::Acquire) {
        let snap = handle.load();
        loads += 1;
        let epoch = snap.epoch();
        assert!(
            epoch >= last_epoch,
            "epoch went backwards: {last_epoch} -> {epoch}"
        );
        last_epoch = epoch;
        if epochs.last() != Some(&epoch) {
            epochs.push(epoch);
        }
        assert!(snap.verify(), "snapshot checksum failed at epoch {epoch}");

        // Every answer must match this epoch's graph exactly — a torn or
        // stale-mixed table would disagree somewhere on this sweep.
        for s in 0..N {
            for d in 0..N {
                let want = oracle(epoch, s, d);
                assert_eq!(snap.dist(s, d), Some(want), "d({s}, {d}) at epoch {epoch}");
                let path = snap.path(s, d).expect("cycle stays connected");
                assert_eq!(path.len() as u32, want + 1, "path({s}, {d}) at {epoch}");
            }
        }
        // Batches answer from the same single snapshot.
        let pairs: Vec<(u32, u32)> = (0..N).map(|s| (s, (s + 5) % N)).collect();
        for (i, got) in snap.dist_batch(&pairs).into_iter().enumerate() {
            let (s, d) = pairs[i];
            assert_eq!(got, Some(oracle(epoch, s, d)));
        }
    }
    (loads, epochs)
}

#[test]
fn readers_always_see_exactly_one_epoch() {
    let g = generators::cycle(N as usize);
    let service = RouteService::with_threads(&g, 2).unwrap();
    let controller = service.spawn();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..READERS {
            let handle = controller.handle();
            let done = &done;
            joins.push(scope.spawn(move || reader(&handle, done)));
        }

        for epoch in 1..=REPUBLISHES {
            let published = controller.apply_wait(plan_for(epoch)).unwrap();
            assert_eq!(published, epoch);
        }
        done.store(true, Ordering::Release);

        for join in joins {
            let (loads, epochs) = join.join().unwrap();
            assert!(loads > 0, "reader never got to load a snapshot");
            assert!(
                epochs.windows(2).all(|w| w[0] < w[1]),
                "epochs observed out of order: {epochs:?}"
            );
        }
    });

    // After the writer is done every handle settles on the final epoch.
    let handle = controller.handle();
    assert_eq!(handle.epoch(), REPUBLISHES);
    let service = controller.shutdown();
    assert_eq!(service.epoch(), REPUBLISHES);
    assert!(service.handle().load().verify());
}

#[test]
fn a_reader_mid_batch_is_never_torn() {
    // A single reader holds one snapshot across many republishes; its
    // answers must stay frozen at the old epoch the whole time.
    let g = generators::cycle(N as usize);
    let service = RouteService::build(&g).unwrap();
    let controller = service.spawn();
    let held = controller.handle().load();
    assert_eq!(held.epoch(), 0);

    for epoch in 1..=4 {
        controller.apply_wait(plan_for(epoch)).unwrap();
        // The held snapshot still answers with epoch-0 distances.
        for s in 0..N {
            for d in 0..N {
                assert_eq!(held.dist(s, d), Some(cycle_dist(s, d)));
            }
        }
        assert_eq!(held.epoch(), 0);
        assert!(held.verify());
        // While a fresh load sees the new epoch.
        assert_eq!(controller.handle().epoch(), epoch);
    }
    controller.shutdown();
}

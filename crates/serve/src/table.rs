//! The immutable data plane: a finished distributed computation compacted
//! into flat, cache-friendly query arrays.
//!
//! A [`RouteTable`] is built once from an [`ApspResult`] (the initial
//! epoch) or a [`ChurnedResult`] (every republish after a topology change)
//! and never mutated afterwards — concurrency comes from swapping whole
//! tables behind a [`ServeHandle`](crate::ServeHandle), never from locking
//! rows. Both `O(n²)` payloads are flat `u32` arrays (next hop + hop
//! count, row-major by source), so a point query is two array reads and a
//! batch walks contiguous memory.
//!
//! Every table carries the attribution trail of the run that produced it:
//! its topology **epoch**, the engine's
//! [`TerminationCertificate`], the run's [`RunStats`], and the
//! [`RebuildPolicy`] that produced it (initial build, kernel repair, or
//! the adaptive full-recompute fallback). A FNV-folded checksum over the
//! query-visible payload lets stress tests assert that every observed
//! answer was internally consistent with exactly one epoch.

use dapsp_congest::{RunStats, TerminationCertificate, Topology};
use dapsp_core::apsp::ApspResult;
use dapsp_core::routing::RoutingTables;
use dapsp_core::{ChurnedResult, CoreError};
use dapsp_graph::INFINITY;

use crate::error::ServeError;

/// Flat-array sentinel for "no next hop" (`v == dst`, unreachable, or
/// absent endpoint).
const NO_HOP: u32 = u32::MAX;

/// How a snapshot's distances were (re)computed — part of the attribution
/// story a snapshot carries alongside its certificate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildPolicy {
    /// The initial full Algorithm 1 run (epoch 0).
    Initial,
    /// A churn-track repair: the [`RepairKernel`](dapsp_core::kernel::RepairKernel)
    /// patched the converged computation in place.
    Repaired,
    /// The churn track ran, but the change batch crossed the adaptive
    /// threshold and nodes fell back to a full cache recompute.
    RecomputeFallback,
}

impl RebuildPolicy {
    /// Short label for logs and bench rows.
    pub fn name(self) -> &'static str {
        match self {
            RebuildPolicy::Initial => "initial",
            RebuildPolicy::Repaired => "repair",
            RebuildPolicy::RecomputeFallback => "recompute",
        }
    }
}

/// An immutable, queryable compaction of one converged shortest-path
/// computation. See the crate docs for the design.
#[derive(Clone, Debug)]
pub struct RouteTable {
    n: usize,
    epoch: u64,
    /// `next_hop[s * n + d]` — neighbor id, or [`NO_HOP`].
    next_hop: Vec<u32>,
    /// `hops[s * n + d]` — hop distance, or [`INFINITY`].
    hops: Vec<u32>,
    /// Whether each node is part of the served topology.
    present: Vec<bool>,
    /// Per-node eccentricity over present nodes ([`INFINITY`] when the
    /// node is absent or cannot reach some present node).
    ecc: Vec<u32>,
    /// Present nodes of minimum (finite) eccentricity, ascending; empty
    /// when the served graph is disconnected.
    centers: Vec<u32>,
    /// The girth of the served graph (`None` for forests).
    girth: Option<u32>,
    policy: RebuildPolicy,
    stats: RunStats,
    certificate: Option<TerminationCertificate>,
    checksum: u64,
}

impl RouteTable {
    /// Compacts a finished APSP run into the epoch-`epoch` table,
    /// **consuming** the result — the `O(n²)` matrices are read out of the
    /// moved buffers, never defensively cloned.
    pub fn from_apsp(result: ApspResult, epoch: u64) -> RouteTable {
        let stats = result.stats;
        let certificate = result.certificate.clone();
        let girth = result.girth_candidate;
        let n = result.distances.num_nodes();
        let tables = RoutingTables::from_apsp_owned(result);
        let (next_hop, hops) = flatten(&tables, n);
        Self::assemble(
            n,
            epoch,
            next_hop,
            hops,
            vec![true; n],
            girth,
            RebuildPolicy::Initial,
            stats,
            certificate,
        )
    }

    /// Compacts a churn-repaired APSP run
    /// ([`apsp::run_churned`](dapsp_core::apsp::run_churned)) into the
    /// epoch-`epoch` table. `final_topo` must be the *post-churn* topology
    /// (ports resolve through it); the girth is re-derived host-side from
    /// the repaired distances plus the live adjacency, since the repair
    /// kernel maintains distances, not wave-collision witnesses.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidTable`] unless the result maintains all-pairs
    /// roots and matches `final_topo`'s size.
    pub fn from_churned(
        result: &ChurnedResult,
        final_topo: &Topology,
        epoch: u64,
    ) -> Result<RouteTable, ServeError> {
        let tables = RoutingTables::from_churned(result, final_topo).map_err(|e| match e {
            CoreError::InvalidParameter(why) => ServeError::InvalidTable(why),
            other => ServeError::Core(other),
        })?;
        let n = result.dist.len();
        let (next_hop, hops) = flatten(&tables, n);
        let girth = derive_girth(n, &hops, &final_topo.to_adjacency());
        let policy = if result.stats.recompute_fallbacks > 0 {
            RebuildPolicy::RecomputeFallback
        } else {
            RebuildPolicy::Repaired
        };
        Ok(Self::assemble(
            n,
            epoch,
            next_hop,
            hops,
            result.present.clone(),
            girth,
            policy,
            result.stats,
            result.certificate.clone(),
        ))
    }

    #[allow(clippy::too_many_arguments)] // one internal call site, field-per-arg
    fn assemble(
        n: usize,
        epoch: u64,
        next_hop: Vec<u32>,
        hops: Vec<u32>,
        present: Vec<bool>,
        girth: Option<u32>,
        policy: RebuildPolicy,
        stats: RunStats,
        certificate: Option<TerminationCertificate>,
    ) -> RouteTable {
        let ecc = derive_eccentricities(n, &hops, &present);
        let finite_min = ecc
            .iter()
            .zip(&present)
            .filter(|&(&e, &p)| p && e != INFINITY)
            .map(|(&e, _)| e)
            .min();
        // A disconnected served graph has no finite eccentricity at all
        // (every present node misses some other present node), so the
        // center is empty rather than arbitrary.
        let centers = match finite_min {
            Some(min) => (0..n as u32)
                .filter(|&v| present[v as usize] && ecc[v as usize] == min)
                .collect(),
            None => Vec::new(),
        };
        let mut table = RouteTable {
            n,
            epoch,
            next_hop,
            hops,
            present,
            ecc,
            centers,
            girth,
            policy,
            stats,
            certificate,
            checksum: 0,
        };
        table.checksum = table.compute_checksum();
        table
    }

    /// The number of nodes the table covers (including absent ones, which
    /// keep their ids but serve nothing).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The topology epoch this snapshot serves: 0 for the initial build,
    /// +1 per applied [`TopologyPlan`](dapsp_congest::TopologyPlan).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `v` is part of the served topology.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn is_present(&self, v: u32) -> bool {
        self.present[v as usize]
    }

    /// Hop distance from `s` to `d`, `None` when unreachable (or either
    /// endpoint is absent).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `d` is out of range.
    pub fn dist(&self, s: u32, d: u32) -> Option<u32> {
        let h = self.hops[s as usize * self.n + d as usize];
        (h != INFINITY && self.present[d as usize]).then_some(h)
    }

    /// The neighbor `s` forwards to when routing toward `d` (`None` at
    /// `s == d` and for unroutable pairs).
    ///
    /// # Panics
    ///
    /// Panics if `s` or `d` is out of range.
    pub fn next_hop(&self, s: u32, d: u32) -> Option<u32> {
        let hop = self.next_hop[s as usize * self.n + d as usize];
        (hop != NO_HOP).then_some(hop)
    }

    /// Reconstructs the full shortest path from `s` to `d` (inclusive) by
    /// walking next-hop pointers; `None` when `d` is unreachable. The walk
    /// is bounded by the recorded hop count, so a corrupt table reads back
    /// as `None`, never a hang.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `d` is out of range.
    pub fn path(&self, s: u32, d: u32) -> Option<Vec<u32>> {
        let budget = self.dist(s, d)?;
        let mut path = Vec::with_capacity(budget as usize + 1);
        path.push(s);
        let mut cur = s;
        for _ in 0..budget {
            cur = self.next_hop(cur, d)?;
            path.push(cur);
        }
        (cur == d).then_some(path)
    }

    /// Batched distance lookup: one pass over `pairs` against this single
    /// snapshot (callers holding only a [`ServeHandle`](crate::ServeHandle)
    /// get the one-pointer-load amortization via
    /// [`ServeHandle::dist_batch`](crate::ServeHandle::dist_batch)).
    ///
    /// # Panics
    ///
    /// Panics if any pair is out of range.
    pub fn dist_batch(&self, pairs: &[(u32, u32)]) -> Vec<Option<u32>> {
        pairs.iter().map(|&(s, d)| self.dist(s, d)).collect()
    }

    /// Eccentricity of `v` over the present nodes, `None` when `v` is
    /// absent or some present node is unreachable from it.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn eccentricity(&self, v: u32) -> Option<u32> {
        let e = self.ecc[v as usize];
        (e != INFINITY).then_some(e)
    }

    /// The served graph's diameter (`None` when disconnected).
    pub fn diameter(&self) -> Option<u32> {
        let mut max = None;
        for (v, &p) in self.present.iter().enumerate() {
            if !p {
                continue;
            }
            match self.eccentricity(v as u32) {
                Some(e) => max = Some(max.map_or(e, |m: u32| m.max(e))),
                None => return None,
            }
        }
        max
    }

    /// The served graph's radius (`None` when disconnected).
    pub fn radius(&self) -> Option<u32> {
        self.centers.first().and_then(|&c| self.eccentricity(c))
    }

    /// Present nodes of minimum eccentricity, ascending (empty when the
    /// served graph is disconnected).
    pub fn centers(&self) -> &[u32] {
        &self.centers
    }

    /// The girth of the served graph (`None` for forests).
    pub fn girth(&self) -> Option<u32> {
        self.girth
    }

    /// How this snapshot's distances were computed.
    pub fn policy(&self) -> RebuildPolicy {
        self.policy
    }

    /// Round/message statistics of the run that produced this snapshot.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The engine's termination certificate for the producing run — why
    /// the computation was allowed to stop, per-node quiescence votes
    /// included, so every served answer is attributable.
    pub fn certificate(&self) -> Option<&TerminationCertificate> {
        self.certificate.as_ref()
    }

    /// The checksum stamped at construction over the query-visible payload
    /// (epoch, sizes, next hops, hop counts, presence, eccentricities,
    /// centers, girth).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recomputes the payload checksum and compares it against the stamp —
    /// the torn-read probe concurrency stress tests call on every loaded
    /// snapshot (an `Arc` swap can never tear, and this proves it).
    pub fn verify(&self) -> bool {
        self.compute_checksum() == self.checksum
    }

    fn compute_checksum(&self) -> u64 {
        let mut h = mix(0xcbf2_9ce4_8422_2325, self.epoch);
        h = mix(h, self.n as u64);
        for &x in &self.next_hop {
            h = mix(h, u64::from(x));
        }
        for &x in &self.hops {
            h = mix(h, u64::from(x));
        }
        for &p in &self.present {
            h = mix(h, u64::from(p));
        }
        for &e in &self.ecc {
            h = mix(h, u64::from(e));
        }
        for &c in &self.centers {
            h = mix(h, u64::from(c));
        }
        mix(h, self.girth.map_or(u64::MAX, u64::from))
    }
}

/// One deterministic 64-bit mixing step (FNV-fold plus a finalizing shift).
fn mix(h: u64, x: u64) -> u64 {
    let v = (h ^ x).wrapping_mul(0x0000_0100_0000_01B3);
    v ^ (v >> 31)
}

/// Flattens routing tables into the row-major query arrays.
fn flatten(tables: &RoutingTables, n: usize) -> (Vec<u32>, Vec<u32>) {
    let mut next_hop = Vec::with_capacity(n * n);
    let mut hops = Vec::with_capacity(n * n);
    for v in 0..n as u32 {
        next_hop.extend(tables.next_hop_row(v).iter().map(|h| h.unwrap_or(NO_HOP)));
        hops.extend_from_slice(tables.hops_row(v));
    }
    (next_hop, hops)
}

/// Per-node eccentricity over present destinations, [`INFINITY`] for
/// absent sources and for sources missing some present destination.
fn derive_eccentricities(n: usize, hops: &[u32], present: &[bool]) -> Vec<u32> {
    (0..n)
        .map(|v| {
            if !present[v] {
                return INFINITY;
            }
            let row = &hops[v * n..(v + 1) * n];
            let mut ecc = 0;
            for (u, &d) in row.iter().enumerate() {
                if !present[u] {
                    continue;
                }
                if d == INFINITY {
                    return INFINITY;
                }
                ecc = ecc.max(d);
            }
            ecc
        })
        .collect()
}

/// Exact girth from a hop-distance matrix plus the live adjacency — the
/// host-side analogue of the paper's Lemma 7 wave-collision witnesses,
/// used on republish where the repair kernel maintains distances only.
///
/// For every root `w`: an edge `(u, v)` with `d(w,u) = d(w,v)` witnesses
/// an odd closed walk of length `2·d(w,u) + 1` (an odd closed walk always
/// contains an odd cycle no longer than itself); a node `x` with two
/// distinct neighbors at depth `d(w,x) − 1` witnesses two distinct
/// shortest `w→x` paths, i.e. an even cycle of length at most `2·d(w,x)`.
/// Minimizing over all roots is exact: a root *on* a shortest cycle
/// realizes its length through one of the two cases (odd girth `2k+1` via
/// the opposite edge, even girth `2k` via the opposite node), and
/// distances between nodes of a shortest cycle equal their along-cycle
/// distances, or a shorter cycle would exist.
fn derive_girth(n: usize, hops: &[u32], adj: &[Vec<u32>]) -> Option<u32> {
    let mut best = INFINITY;
    for w in 0..n {
        let dw = &hops[w * n..(w + 1) * n];
        for (x, nbrs) in adj.iter().enumerate() {
            let dx = dw[x];
            if dx == INFINITY {
                continue;
            }
            let mut at_prev_depth = 0u32;
            for &u in nbrs {
                let du = dw[u as usize];
                if du == INFINITY {
                    continue;
                }
                // Odd witness: equal-depth edge (counted once per edge).
                if du == dx && (x as u32) < u && 2 * dx + 1 < best {
                    best = 2 * dx + 1;
                }
                if du + 1 == dx {
                    at_prev_depth += 1;
                }
            }
            // Even witness: two distinct parents in w's BFS layering.
            if at_prev_depth >= 2 && 2 * dx < best {
                best = 2 * dx;
            }
        }
    }
    (best != INFINITY).then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_core::apsp;
    use dapsp_graph::{generators, reference};

    fn table(g: &dapsp_graph::Graph) -> RouteTable {
        RouteTable::from_apsp(apsp::run(g).unwrap(), 0)
    }

    #[test]
    fn point_queries_match_the_oracle() {
        let g = generators::grid(4, 4);
        let t = table(&g);
        let oracle = reference::apsp(&g);
        for s in 0..16u32 {
            for d in 0..16u32 {
                assert_eq!(t.dist(s, d), oracle.get(s, d), "d({s}, {d})");
                let p = t.path(s, d).unwrap();
                assert_eq!(p.len() as u32 - 1, oracle.get(s, d).unwrap());
            }
        }
        assert_eq!(t.epoch(), 0);
        assert_eq!(t.policy(), RebuildPolicy::Initial);
        assert!(t.certificate().is_some(), "snapshot lost its certificate");
    }

    #[test]
    fn derived_quantities_match_the_oracles() {
        for g in [
            generators::cycle(9),
            generators::grid(3, 4),
            generators::lollipop(5, 4),
            generators::balanced_tree(2, 3),
        ] {
            let t = table(&g);
            assert_eq!(t.diameter(), reference::diameter(&g));
            assert_eq!(t.radius(), reference::radius(&g));
            assert_eq!(Some(t.centers().to_vec()), reference::center(&g));
            assert_eq!(t.girth(), reference::girth(&g));
            for v in 0..g.num_nodes() as u32 {
                assert_eq!(
                    t.eccentricity(v),
                    reference::eccentricities(&g).map(|e| e[v as usize])
                );
            }
        }
    }

    #[test]
    fn derived_girth_matches_the_oracle_on_every_small_graph() {
        // `derive_girth` (the republish path) against the oracle on every
        // connected graph with <= 6 nodes: 141 isomorphism classes cover
        // odd/even girths, trees, and every troublesome local structure.
        for n in 1..=6 {
            for g in dapsp_graph::enumerate::connected_graphs(n) {
                let a = apsp::run(&g).unwrap();
                let mut hops = Vec::new();
                for v in 0..n as u32 {
                    hops.extend_from_slice(a.distances.row(v));
                }
                let adj = g.to_topology().to_adjacency();
                assert_eq!(
                    derive_girth(n, &hops, &adj),
                    reference::girth(&g),
                    "girth mismatch on a {n}-node graph: {g:?}"
                );
            }
        }
    }

    #[test]
    fn checksum_verifies_and_pins_the_payload() {
        let g = generators::cycle(6);
        let t = table(&g);
        assert!(t.verify());
        let mut tampered = t.clone();
        tampered.hops[7] ^= 1;
        assert!(!tampered.verify(), "tampered payload must fail verify()");
        let mut reepoched = t.clone();
        reepoched.epoch += 1;
        assert!(!reepoched.verify(), "epoch is part of the checksum");
    }

    #[test]
    fn batch_lookup_matches_point_lookups() {
        let g = generators::grid(3, 3);
        let t = table(&g);
        let pairs: Vec<(u32, u32)> = (0..9u32).map(|i| (i, (i * 7 + 3) % 9)).collect();
        let batch = t.dist_batch(&pairs);
        for (i, &(s, d)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], t.dist(s, d));
        }
    }
}

//! Error type of the serving layer.

use std::error::Error;
use std::fmt;

use dapsp_core::CoreError;

/// Errors raised by the route service.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The underlying distributed computation failed (see [`CoreError`]) —
    /// the snapshot in service is left untouched.
    Core(CoreError),
    /// A table was compacted from a result of the wrong shape (e.g. a
    /// churned run that does not maintain all-pairs roots).
    InvalidTable(String),
    /// The background control-plane thread is gone (shut down or
    /// panicked); the last published snapshot keeps serving, but no new
    /// topology changes can be applied.
    ControlPlaneDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "recompute failed: {e}"),
            ServeError::InvalidTable(why) => write!(f, "invalid table: {why}"),
            ServeError::ControlPlaneDown => {
                write!(f, "control-plane thread is no longer running")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

//! The write side: building the initial snapshot, applying topology
//! changes through the churn track, and (optionally) a background
//! control-plane thread that does both off the readers' path.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use dapsp_congest::{churned_topology, Config, TopologyPlan};
use dapsp_core::apsp;
use dapsp_core::churned::churned_graph;
use dapsp_core::{CoreError, Obs};
use dapsp_graph::Graph;

use crate::error::ServeError;
use crate::handle::ServeHandle;
use crate::table::RouteTable;

/// The control plane of the serving layer: owns the live graph, runs the
/// distributed computation, and publishes [`RouteTable`] snapshots to its
/// [`ServeHandle`].
///
/// Use it synchronously — [`build`](Self::build), then
/// [`apply`](Self::apply) per topology change — or hand it to a
/// background thread with [`spawn`](Self::spawn) so recomputes never run
/// on a reader thread. Either way readers only ever see fully built
/// tables: a failed or invalid recompute leaves the previous snapshot in
/// service.
#[derive(Debug)]
pub struct RouteService {
    graph: Graph,
    epoch: u64,
    threads: usize,
    handle: ServeHandle,
}

impl RouteService {
    /// Runs the full distributed APSP on `graph` (serial executor) and
    /// publishes the epoch-0 snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Core`] when the run fails (empty or disconnected
    /// graph, round limit).
    pub fn build(graph: &Graph) -> Result<RouteService, ServeError> {
        RouteService::with_threads(graph, 1)
    }

    /// Like [`build`](Self::build), running this and every subsequent
    /// recompute on the work-stealing pool executor with `threads`
    /// workers (1 = serial). Results are bit-identical across executors,
    /// so this is purely a latency knob for the control plane.
    ///
    /// # Errors
    ///
    /// Same as [`build`](Self::build).
    pub fn with_threads(graph: &Graph, threads: usize) -> Result<RouteService, ServeError> {
        let result = apsp::run_on_obs(&graph.to_topology(), obs_for(threads))?;
        let handle = ServeHandle::new(Arc::new(RouteTable::from_apsp(result, 0)));
        Ok(RouteService {
            graph: graph.clone(),
            epoch: 0,
            threads,
            handle,
        })
    }

    /// A handle for readers; clone it freely across threads.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// The epoch of the latest published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The graph the latest snapshot serves.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Applies a topology change: reruns the computation under `plan`
    /// through the churn track (kernel repair, with the adaptive
    /// full-recompute fallback on large batches), compacts the repaired
    /// result against the post-churn topology, and atomically publishes
    /// it as epoch `+1`. Readers keep the old snapshot until the new one
    /// is fully built.
    ///
    /// # Errors
    ///
    /// [`ServeError::Core`] when the plan does not apply cleanly or the
    /// run fails; [`ServeError::InvalidTable`] when the repaired result
    /// cannot back a full routing table. The published snapshot and the
    /// service's graph are unchanged on error.
    pub fn apply(&mut self, plan: &TopologyPlan) -> Result<Arc<RouteTable>, ServeError> {
        let topo = self.graph.to_topology();
        let repaired = apsp::run_churned_on(&topo, plan, obs_for(self.threads))?;
        let final_topo = churned_topology(&topo, plan).map_err(CoreError::from)?;
        let table = Arc::new(RouteTable::from_churned(
            &repaired,
            &final_topo,
            self.epoch + 1,
        )?);
        self.graph = churned_graph(&self.graph, plan)?;
        self.epoch += 1;
        self.handle.publish(Arc::clone(&table));
        Ok(table)
    }

    /// Moves the service onto a background control-plane thread. Readers
    /// keep querying their [`ServeHandle`]s throughout; topology changes
    /// are applied through the returned controller and published
    /// atomically when ready.
    pub fn spawn(self) -> RouteServiceController {
        let handle = self.handle();
        let (tx, rx) = channel::<Command>();
        let thread = std::thread::spawn(move || control_loop(self, rx));
        RouteServiceController {
            handle,
            tx,
            thread: Some(thread),
        }
    }
}

/// One executor choice for every run the service performs.
fn obs_for(threads: usize) -> Obs<'static> {
    // Round-trip through Config::with_threads so the serial/pool cutover
    // rule stays in one place.
    Obs::none().with_executor(Config::for_n(1).with_threads(threads).executor)
}

/// What the control-plane thread can be asked to do.
enum Command {
    /// Apply a plan; report the new epoch (or the error) back.
    Apply(TopologyPlan, Sender<Result<u64, ServeError>>),
    /// Exit the loop, handing the service back through the thread's
    /// return value.
    Stop,
}

fn control_loop(mut service: RouteService, rx: Receiver<Command>) -> RouteService {
    // A closed channel (controller dropped without shutdown) ends the
    // loop too — the thread never outlives its controller for long.
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Apply(plan, reply) => {
                let outcome = service.apply(&plan).map(|table| table.epoch());
                // A dropped ticket just means nobody is waiting.
                let _ = reply.send(outcome);
            }
            Command::Stop => break,
        }
    }
    service
}

/// A pending recompute on the control-plane thread; [`wait`](Self::wait)
/// blocks until the new snapshot is published (or the recompute fails).
#[derive(Debug)]
pub struct EpochTicket {
    rx: Receiver<Result<u64, ServeError>>,
}

impl EpochTicket {
    /// Blocks until the recompute finishes; returns the published epoch.
    ///
    /// # Errors
    ///
    /// The recompute's own error, or [`ServeError::ControlPlaneDown`] if
    /// the control-plane thread died before replying.
    pub fn wait(self) -> Result<u64, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ControlPlaneDown)?
    }
}

/// Owner handle for a spawned control-plane thread (see
/// [`RouteService::spawn`]).
///
/// Dropping the controller without calling
/// [`shutdown`](Self::shutdown) closes the command channel, which ends
/// the control loop; the last published snapshot keeps serving through
/// any outstanding [`ServeHandle`]s.
#[derive(Debug)]
pub struct RouteServiceController {
    handle: ServeHandle,
    tx: Sender<Command>,
    thread: Option<JoinHandle<RouteService>>,
}

impl RouteServiceController {
    /// A reader handle; clone it freely across threads.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Queues a topology change on the control-plane thread and returns
    /// immediately; readers see the new epoch once it is published.
    ///
    /// # Errors
    ///
    /// [`ServeError::ControlPlaneDown`] if the control-plane thread is
    /// gone.
    pub fn apply(&self, plan: TopologyPlan) -> Result<EpochTicket, ServeError> {
        let (reply, rx) = channel();
        self.tx
            .send(Command::Apply(plan, reply))
            .map_err(|_| ServeError::ControlPlaneDown)?;
        Ok(EpochTicket { rx })
    }

    /// [`apply`](Self::apply) + [`EpochTicket::wait`] in one call.
    ///
    /// # Errors
    ///
    /// Same as [`apply`](Self::apply) and [`EpochTicket::wait`].
    pub fn apply_wait(&self, plan: TopologyPlan) -> Result<u64, ServeError> {
        self.apply(plan)?.wait()
    }

    /// Stops the control-plane thread and hands the service back (e.g. to
    /// inspect the final graph, or to respawn later).
    ///
    /// # Panics
    ///
    /// Panics if the control-plane thread itself panicked.
    pub fn shutdown(mut self) -> RouteService {
        let _ = self.tx.send(Command::Stop);
        self.thread
            .take()
            .expect("shutdown runs at most once")
            .join()
            .expect("control-plane thread panicked")
    }
}

impl Drop for RouteServiceController {
    fn drop(&mut self) {
        let _ = self.tx.send(Command::Stop);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapsp_graph::{generators, reference, INFINITY};

    #[test]
    fn build_serves_the_oracle_distances() {
        let g = generators::grid(3, 3);
        let service = RouteService::build(&g).unwrap();
        let handle = service.handle();
        let oracle = reference::apsp(&g);
        for s in 0..9u32 {
            for d in 0..9u32 {
                assert_eq!(handle.dist(s, d), oracle.get(s, d));
            }
        }
        assert_eq!(handle.epoch(), 0);
    }

    #[test]
    fn apply_republishes_the_mutated_graph() {
        let g = generators::cycle(8);
        let mut service = RouteService::build(&g).unwrap();
        let handle = service.handle();
        let before = handle.load();
        assert_eq!(before.dist(0, 4), Some(4));

        let plan = TopologyPlan::new().with_remove(2, 0, 1);
        let table = service.apply(&plan).unwrap();
        assert_eq!(table.epoch(), 1);
        // The cycle is now a path 1-2-...-7-0; going "the short way"
        // through the removed edge is gone.
        assert_eq!(handle.dist(0, 4), Some(4));
        assert_eq!(handle.dist(0, 1), Some(7));
        // The pre-swap snapshot is untouched.
        assert_eq!(before.dist(0, 1), Some(1));
        assert_eq!(before.epoch(), 0);

        let oracle = reference::apsp(&churned_graph(&g, &plan).unwrap());
        let now = handle.load();
        for s in 0..8u32 {
            for d in 0..8u32 {
                assert_eq!(now.dist(s, d), oracle.get(s, d), "d({s}, {d})");
            }
        }
        assert!(now.verify());
    }

    #[test]
    fn a_failed_apply_leaves_the_snapshot_in_service() {
        let g = generators::path(4);
        let mut service = RouteService::build(&g).unwrap();
        let handle = service.handle();
        // Removing a non-edge does not apply cleanly.
        let bad = TopologyPlan::new().with_remove(1, 0, 3);
        assert!(service.apply(&bad).is_err());
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.dist(0, 3), Some(3));
        // And the service still works afterwards.
        let good = TopologyPlan::new().with_insert(1, 0, 3);
        service.apply(&good).unwrap();
        assert_eq!(handle.dist(0, 3), Some(1));
        assert_eq!(handle.epoch(), 1);
    }

    #[test]
    fn severed_destinations_serve_none() {
        let g = generators::path(6);
        let mut service = RouteService::build(&g).unwrap();
        let handle = service.handle();
        service
            .apply(&TopologyPlan::new().with_remove(2, 2, 3))
            .unwrap();
        assert_eq!(handle.dist(0, 5), None);
        assert_eq!(handle.path(0, 5), None);
        assert_eq!(handle.dist(0, 2), Some(2));
        let t = handle.load();
        assert_eq!(t.diameter(), None, "severed graph has no diameter");
        assert!(t.centers().is_empty());
        assert_eq!(t.eccentricity(0), None);
        // Raw hops row still flags the unreachable half as INFINITY.
        assert_eq!(t.dist_batch(&[(0, 5), (0, 2)]), vec![None, Some(2)]);
        let _ = INFINITY; // imported for symmetry with sibling tests
    }

    #[test]
    fn spawned_control_plane_applies_and_hands_back() {
        let g = generators::grid(3, 3);
        let service = RouteService::with_threads(&g, 2).unwrap();
        let controller = service.spawn();
        let handle = controller.handle();

        let epoch = controller
            .apply_wait(TopologyPlan::new().with_remove(2, 0, 1))
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(handle.epoch(), 1);

        let ticket = controller
            .apply(TopologyPlan::new().with_insert(2, 0, 8))
            .unwrap();
        assert_eq!(ticket.wait().unwrap(), 2);
        assert_eq!(handle.dist(0, 8), Some(1));

        let service = controller.shutdown();
        assert_eq!(service.epoch(), 2);
        // The handed-back service keeps serving the same table.
        assert_eq!(service.handle().epoch(), 2);
    }

    #[test]
    fn controller_drop_stops_the_thread_but_not_the_snapshot() {
        let g = generators::cycle(5);
        let controller = RouteService::build(&g).unwrap().spawn();
        let handle = controller.handle();
        drop(controller);
        // The last snapshot keeps serving.
        assert_eq!(handle.dist(0, 2), Some(2));
    }
}

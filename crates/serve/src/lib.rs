//! Routing tables as a service: run the distributed computation once,
//! compact it into an immutable [`RouteTable`], and serve point lookups,
//! path reconstruction, and graph-metric queries from any number of
//! concurrent threads.
//!
//! The crate splits the classic control-plane/data-plane pair over the
//! `dapsp` stack:
//!
//! * **Data plane** — [`RouteTable`]: flat next-hop and hop-count arrays
//!   (plus eccentricities, centers, girth, and the producing run's
//!   [`TerminationCertificate`](dapsp_congest::TerminationCertificate)),
//!   immutable from construction. [`ServeHandle`] publishes tables by
//!   atomic snapshot swap: readers `load()` an `Arc` and query lock-free;
//!   a reader mid-batch keeps its snapshot alive and consistent no matter
//!   how many republishes happen meanwhile.
//! * **Control plane** — [`RouteService`]: owns the live graph, applies
//!   [`TopologyPlan`](dapsp_congest::TopologyPlan)s through the churn
//!   track (kernel repair with the adaptive full-recompute fallback), and
//!   publishes each repaired table as a new epoch.
//!   [`RouteService::spawn`] moves it onto a background thread driven
//!   through a [`RouteServiceController`], so recomputes never run on a
//!   reader thread.
//!
//! ```
//! use dapsp_congest::TopologyPlan;
//! use dapsp_graph::generators;
//! use dapsp_serve::RouteService;
//!
//! let g = generators::grid(3, 3);
//! let mut service = RouteService::build(&g)?;
//! let handle = service.handle(); // clone per reader thread
//! assert_eq!(handle.dist(0, 8), Some(4));
//! assert_eq!(handle.path(0, 8).unwrap().len(), 5);
//!
//! // A topology change republishes atomically; readers never block.
//! service.apply(&TopologyPlan::new().with_insert(2, 0, 8))?;
//! assert_eq!(handle.dist(0, 8), Some(1));
//! assert_eq!(handle.load().epoch(), 1);
//! # Ok::<(), dapsp_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod handle;
mod service;
mod table;

pub use error::ServeError;
pub use handle::ServeHandle;
pub use service::{EpochTicket, RouteService, RouteServiceController};
pub use table::{RebuildPolicy, RouteTable};

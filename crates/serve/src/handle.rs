//! The read side: a cloneable handle that loads the current snapshot
//! with one brief lock and answers every query lock-free after that.

use std::sync::{Arc, RwLock};

use crate::table::RouteTable;

/// A cloneable, thread-safe handle onto the currently published
/// [`RouteTable`].
///
/// Hand one clone to each reader thread. [`load`](Self::load) takes a
/// read lock just long enough to clone an `Arc` (no reader ever blocks on
/// a recompute — the control plane builds the next table entirely outside
/// the lock and swaps a pointer); everything after `load` runs against an
/// immutable snapshot with no synchronization at all. Readers holding an
/// old snapshot keep it alive and internally consistent until they drop
/// it — a swap can never tear a table out from under a query.
///
/// The convenience forwarders ([`dist`](Self::dist),
/// [`next_hop`](Self::next_hop), …) load per call; batch work should
/// `load()` once — or use [`dist_batch`](Self::dist_batch), which
/// amortizes the pointer load over the whole batch.
#[derive(Clone, Debug)]
pub struct ServeHandle {
    inner: Arc<RwLock<Arc<RouteTable>>>,
}

impl ServeHandle {
    /// Wraps `table` as the first published snapshot.
    pub(crate) fn new(table: Arc<RouteTable>) -> ServeHandle {
        ServeHandle {
            inner: Arc::new(RwLock::new(table)),
        }
    }

    /// The currently published snapshot. Queries against the returned
    /// `Arc` are lock-free and see exactly one epoch.
    pub fn load(&self) -> Arc<RouteTable> {
        Arc::clone(&self.inner.read().expect("route table publisher panicked"))
    }

    /// Atomically replaces the published snapshot; in-flight readers keep
    /// the snapshot they loaded.
    pub(crate) fn publish(&self, table: Arc<RouteTable>) {
        *self.inner.write().expect("route table reader panicked") = table;
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.load().epoch()
    }

    /// Hop distance on the current snapshot; see [`RouteTable::dist`].
    ///
    /// # Panics
    ///
    /// Panics if `s` or `d` is out of range.
    pub fn dist(&self, s: u32, d: u32) -> Option<u32> {
        self.load().dist(s, d)
    }

    /// Next hop on the current snapshot; see [`RouteTable::next_hop`].
    ///
    /// # Panics
    ///
    /// Panics if `s` or `d` is out of range.
    pub fn next_hop(&self, s: u32, d: u32) -> Option<u32> {
        self.load().next_hop(s, d)
    }

    /// Full path on the current snapshot; see [`RouteTable::path`].
    ///
    /// # Panics
    ///
    /// Panics if `s` or `d` is out of range.
    pub fn path(&self, s: u32, d: u32) -> Option<Vec<u32>> {
        self.load().path(s, d)
    }

    /// Batched distances against one consistent snapshot — a single
    /// pointer load no matter how many pairs; see
    /// [`RouteTable::dist_batch`].
    ///
    /// # Panics
    ///
    /// Panics if any pair is out of range.
    pub fn dist_batch(&self, pairs: &[(u32, u32)]) -> Vec<Option<u32>> {
        self.load().dist_batch(pairs)
    }
}
